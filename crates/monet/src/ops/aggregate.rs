//! Aggregation: whole-BAT aggregates and the set-aggregate constructor
//! `{g}` of Figure 4.
//!
//! `{g}(AB) = {a·g(S_a) | a ∈ A ∧ S_a = {b | ab ∈ AB}}`: group over the
//! head of the BAT and compute an aggregate of each group's tail values.
//! "With this construct we can execute nested aggregates in one go, rather
//! than having to do iterative calls on nested collections" — this is what
//! makes the flattened execution of MOA's nested `sum`s fast.

use std::sync::Arc;
use std::time::Instant;

use crate::atom::{AtomType, AtomValue};
use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::{MonetError, Result};
use crate::pager;
use crate::props::{ColProps, Props};
use crate::typed::TypedVals;

/// Aggregate functions, usable both as whole-BAT scalars and per-group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// Whole-BAT aggregate over the tail column.
///
/// `sum` over int/lng tails yields `lng` (wide accumulator), over dbl
/// yields `dbl`; `count` yields `lng`; `avg` yields `dbl`; `min`/`max`
/// keep the tail type. `min`/`max`/`avg` over an empty BAT are errors.
///
/// Sums and averages are **morsel-decomposed**: one partial per fixed
/// [`crate::par::morsel_rows`] window, partials combined in morsel order.
/// The morsel grid is a property of the operand, never of the thread
/// count, so the floating-point association — and with it the result bits
/// — is identical whether the partials are computed serially or on the
/// worker pool ([`crate::costmodel::par_threads`] decides).
pub fn aggr_scalar(ctx: &ExecCtx, ab: &Bat, f: AggFunc) -> Result<AtomValue> {
    ctx.probe("op/aggr")?;
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let t = ab.tail();
    let n = ab.len();
    let threads = super::par_threads(ctx, n);
    match f {
        AggFunc::Count => Ok(AtomValue::Lng(n as i64)),
        AggFunc::Sum => match t.atom_type() {
            AtomType::Int => {
                let col = t.decoded();
                let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
                    col.as_int_slice().expect("int tail")[r].iter().map(|&x| x as i64).sum::<i64>()
                })?;
                Ok(AtomValue::Lng(parts.into_iter().sum()))
            }
            AtomType::Lng => {
                let col = t.decoded();
                let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
                    col.as_lng_slice().expect("lng tail")[r].iter().sum::<i64>()
                })?;
                Ok(AtomValue::Lng(parts.into_iter().sum()))
            }
            AtomType::Dbl => {
                if t.encoding() == crate::props::Enc::Rle {
                    // Run-aware per-morsel decode into pooled scratch: the
                    // element order matches the decoded window exactly, so
                    // the sum bits are unchanged — but no full-column
                    // decode is ever materialized (or cached).
                    let col = t.clone();
                    let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
                        let mut buf = crate::typed::take_f64(r.len());
                        let ok = col.rle_dbl_window_into(r.start, r.len(), &mut buf);
                        debug_assert!(ok, "RLE dbl tail expected");
                        let s = buf.iter().sum::<f64>();
                        crate::typed::put_f64(buf);
                        s
                    })?;
                    return Ok(AtomValue::Dbl(parts.into_iter().sum()));
                }
                // decoded(): dbl is never dict/FOR-encoded (a no-op clone).
                let col = t.decoded();
                let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
                    col.as_dbl_slice().expect("dbl tail")[r].iter().sum::<f64>()
                })?;
                Ok(AtomValue::Dbl(parts.into_iter().sum()))
            }
            ty => Err(MonetError::Unsupported { op: "sum", ty }),
        },
        AggFunc::Avg => {
            if !matches!(t.atom_type(), AtomType::Int | AtomType::Lng | AtomType::Dbl) {
                return Err(MonetError::Unsupported { op: "avg", ty: t.atom_type() });
            }
            if n == 0 {
                return Err(MonetError::Malformed {
                    op: "avg",
                    detail: "average of empty BAT".into(),
                });
            }
            if t.atom_type() == AtomType::Dbl && t.encoding() == crate::props::Enc::Rle {
                // Same run-aware scratch decode as the RLE dbl sum above.
                let col = t.clone();
                let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
                    let mut buf = crate::typed::take_f64(r.len());
                    let ok = col.rle_dbl_window_into(r.start, r.len(), &mut buf);
                    debug_assert!(ok, "RLE dbl tail expected");
                    let s = buf.iter().sum::<f64>();
                    crate::typed::put_f64(buf);
                    s
                })?;
                return Ok(AtomValue::Dbl(parts.into_iter().sum::<f64>() / n as f64));
            }
            let col = t.decoded();
            let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| match col
                .atom_type()
            {
                AtomType::Int => {
                    col.as_int_slice().unwrap()[r].iter().map(|&x| x as f64).sum::<f64>()
                }
                AtomType::Lng => {
                    col.as_lng_slice().unwrap()[r].iter().map(|&x| x as f64).sum::<f64>()
                }
                _ => col.as_dbl_slice().unwrap()[r].iter().sum::<f64>(),
            })?;
            Ok(AtomValue::Dbl(parts.into_iter().sum::<f64>() / n as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            if n == 0 {
                return Err(MonetError::Malformed {
                    op: f.name(),
                    detail: "min/max of empty BAT".into(),
                });
            }
            // Per-morsel first-winner extremes, combined in morsel order
            // with the same strict-improvement rule: the global winner is
            // the earliest row holding the extreme value — identical to
            // the serial scan.
            let col = t.clone();
            let minimize = f == AggFunc::Min;
            let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
                crate::for_each_typed!(&col, |tv| {
                    let mut best = r.start;
                    for i in r {
                        let c = tv.cmp_one(tv.value(i), tv.value(best));
                        if if minimize { c.is_lt() } else { c.is_gt() } {
                            best = i;
                        }
                    }
                    best
                })
            })?;
            let best = crate::for_each_typed!(t, |tv| {
                let mut best = parts[0];
                for &cand in &parts[1..] {
                    let c = tv.cmp_one(tv.value(cand), tv.value(best));
                    if if minimize { c.is_lt() } else { c.is_gt() } {
                        best = cand;
                    }
                }
                best
            });
            Ok(t.get(best))
        }
    }
}

/// Combine-in-morsel-order runner for per-group partial accumulators: one
/// `ngroups`-wide buffer per fixed morsel, filled by `fill` and folded
/// into the result by `merge`, **in morsel order**.
///
/// `exact` marks aggregates whose combine is associative and
/// order-insensitive bit-for-bit (count, integer sums, first-winner
/// min/max): for those the serial path is one streaming `fill` over the
/// whole operand — no per-morsel buffers — because any morsel regrouping
/// provably yields the same bits. Only inexact (float) merges pay the
/// morsel-streamed serial pass, which reproduces the parallel combine
/// sequence exactly, so result bits match at every thread count.
///
/// The parallel fan-out is additionally footprint-bounded: past ~4M
/// partial slots (`ngroups x morsels`, ≈ 32 MB of f64 at the default
/// morsel size) the group cardinality approaches the row count and
/// per-morsel buffers would dwarf the operand, so the kernel streams
/// serially instead. The bound depends only on the operand and the
/// morsel grid — never the thread count — so thread-count invariance
/// holds on both sides of it (above it, *every* thread count streams).
fn group_partials<A, F, M>(
    ctx: &ExecCtx,
    n: usize,
    threads: usize,
    ngroups: usize,
    init: A,
    exact: bool,
    fill: F,
    mut merge: M,
) -> Result<Vec<A>>
where
    A: Clone + Send + Sync + 'static,
    F: Fn(std::ops::Range<usize>, &mut [A]) + Send + Sync + 'static,
    M: FnMut(&mut [A], &[A]),
{
    let ms = crate::par::morsels(n);
    let mut total = vec![init.clone(); ngroups];
    let fits = ngroups.saturating_mul(ms.len()) <= (1 << 22);
    if threads > 1 && fits {
        let ms2 = ms.clone();
        let parts = crate::par::try_run_tasks(
            &ctx.gov,
            crate::gov::site::PAR_MORSEL,
            ms.len(),
            threads,
            move |k| {
                let mut buf = vec![init.clone(); ngroups];
                fill(ms2[k].clone(), &mut buf);
                buf
            },
        )?;
        for p in &parts {
            merge(&mut total, p);
        }
    } else if exact || !fits {
        // One streaming pass. Exact merges are association-free; inexact
        // merges only reach here when the footprint bound disables the
        // parallel path for this operand at *every* thread count.
        fill(0..n, &mut total);
    } else {
        // Inexact serial under the footprint bound: stream the same
        // morsel partials the parallel path would compute, in order.
        let mut buf = vec![init.clone(); ngroups];
        for (k, m) in ms.into_iter().enumerate() {
            if k > 0 {
                for b in buf.iter_mut() {
                    *b = init.clone();
                }
            }
            fill(m, &mut buf);
            merge(&mut total, &buf);
        }
    }
    Ok(total)
}

/// The set-aggregate constructor `{g}(AB)`: one result BUN per distinct
/// head value. Uses streaming runs when the head is sorted, a hash table
/// otherwise (first-occurrence output order).
pub fn set_aggregate(ctx: &ExecCtx, f: AggFunc, ab: &Bat) -> Result<Bat> {
    ctx.probe("op/set-aggregate")?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.head());
        pager::touch_scan(p, ab.tail());
    }
    let tail_ty = ab.tail().atom_type();
    if !matches!(f, AggFunc::Count | AggFunc::Min | AggFunc::Max)
        && !matches!(tail_ty, AtomType::Int | AtomType::Lng | AtomType::Dbl)
    {
        return Err(MonetError::Unsupported { op: "set-aggregate", ty: tail_ty });
    }

    // Assign each BUN to a group; remember one representative position per
    // group for building the result head (and for min/max gathering).
    let h = ab.head();
    let n = ab.len();
    let sorted = ab.props().head.sorted;
    let threads = if sorted { 1 } else { super::par_threads(ctx, n) };
    let (gid_of, rep, algo): (Vec<u32>, Vec<u32>, &'static str) = if sorted {
        crate::for_each_typed!(h, |hv| {
            let mut gid_of: Vec<u32> = Vec::with_capacity(n);
            let mut rep: Vec<u32> = Vec::new();
            let mut g: u32 = 0;
            for i in 0..n {
                if i > 0 && !hv.eq_one(hv.value(i), hv.value(i - 1)) {
                    g += 1;
                }
                if rep.len() == g as usize {
                    rep.push(i as u32);
                }
                gid_of.push(g);
            }
            (gid_of, rep, "merge")
        })
    } else {
        super::group::hash_group_column(ctx, h, threads)?
    };

    // Aggregate each group's tail values through per-morsel partial
    // accumulators combined in morsel order (see `group_partials` for the
    // determinism argument); the gid vector is shared read-only with the
    // workers.
    let ngroups = rep.len();
    let t = ab.tail();
    let threads = super::par_threads(ctx, n);
    let gid: Arc<Vec<u32>> = Arc::new(gid_of);
    let tail: Column = match f {
        AggFunc::Count => {
            let g = Arc::clone(&gid);
            let counts = group_partials(
                ctx,
                n,
                threads,
                ngroups,
                0i64,
                true,
                move |r, buf| {
                    for i in r {
                        buf[g[i] as usize] += 1;
                    }
                },
                |total, part| {
                    for (tg, &p) in total.iter_mut().zip(part) {
                        *tg += p;
                    }
                },
            )?;
            Column::from_lngs(counts)
        }
        AggFunc::Sum => match tail_ty {
            AtomType::Int | AtomType::Lng => {
                let g = Arc::clone(&gid);
                let col = t.decoded();
                let wide = tail_ty == AtomType::Lng;
                let sums = group_partials(
                    ctx,
                    n,
                    threads,
                    ngroups,
                    0i64,
                    true,
                    move |r, buf| {
                        if wide {
                            let slice = col.as_lng_slice().expect("lng tail");
                            for i in r {
                                buf[g[i] as usize] += slice[i];
                            }
                        } else {
                            let slice = col.as_int_slice().expect("int tail");
                            for i in r {
                                buf[g[i] as usize] += slice[i] as i64;
                            }
                        }
                    },
                    |total, part| {
                        for (tg, &p) in total.iter_mut().zip(part) {
                            *tg += p;
                        }
                    },
                )?;
                Column::from_lngs(sums)
            }
            _ => {
                let g = Arc::clone(&gid);
                let col = t.decoded();
                let sums = group_partials(
                    ctx,
                    n,
                    threads,
                    ngroups,
                    0f64,
                    false,
                    move |r, buf| {
                        let slice = col.as_dbl_slice().expect("dbl tail");
                        for i in r {
                            buf[g[i] as usize] += slice[i];
                        }
                    },
                    |total, part| {
                        for (tg, &p) in total.iter_mut().zip(part) {
                            *tg += p;
                        }
                    },
                )?;
                Column::from_dbls(sums)
            }
        },
        AggFunc::Avg => {
            let g = Arc::clone(&gid);
            let col = t.decoded();
            let acc = group_partials(
                ctx,
                n,
                threads,
                ngroups,
                (0f64, 0u64),
                false,
                move |r, buf| match col.atom_type() {
                    AtomType::Int => {
                        let slice = col.as_int_slice().expect("int tail");
                        for i in r {
                            let b = &mut buf[g[i] as usize];
                            b.0 += slice[i] as f64;
                            b.1 += 1;
                        }
                    }
                    AtomType::Lng => {
                        let slice = col.as_lng_slice().expect("lng tail");
                        for i in r {
                            let b = &mut buf[g[i] as usize];
                            b.0 += slice[i] as f64;
                            b.1 += 1;
                        }
                    }
                    _ => {
                        let slice = col.as_dbl_slice().expect("dbl tail");
                        for i in r {
                            let b = &mut buf[g[i] as usize];
                            b.0 += slice[i];
                            b.1 += 1;
                        }
                    }
                },
                |total, part| {
                    for (tg, p) in total.iter_mut().zip(part) {
                        tg.0 += p.0;
                        tg.1 += p.1;
                    }
                },
            )?;
            Column::from_dbls(acc.iter().map(|(s, c)| s / *c as f64).collect())
        }
        AggFunc::Min | AggFunc::Max => {
            // Per-morsel first-winner rows per group; merged in morsel
            // order with the same strict-improvement rule, so each group's
            // winner is its earliest extreme row — identical to the serial
            // scan seeded with the group representatives.
            let g = Arc::clone(&gid);
            let col = t.clone();
            let minimize = f == AggFunc::Min;
            let best = group_partials(
                ctx,
                n,
                threads,
                ngroups,
                u32::MAX,
                true,
                move |r, buf| {
                    crate::for_each_typed!(&col, |tv| {
                        for i in r.clone() {
                            let b = &mut buf[g[i] as usize];
                            if *b == u32::MAX {
                                *b = i as u32;
                                continue;
                            }
                            let c = tv.cmp_one(tv.value(i), tv.value(*b as usize));
                            if if minimize { c.is_lt() } else { c.is_gt() } {
                                *b = i as u32;
                            }
                        }
                    })
                },
                |total, part| {
                    crate::for_each_typed!(t, |tv| {
                        for (tg, &p) in total.iter_mut().zip(part) {
                            if p == u32::MAX {
                                continue;
                            }
                            if *tg == u32::MAX {
                                *tg = p;
                                continue;
                            }
                            let c = tv.cmp_one(tv.value(p as usize), tv.value(*tg as usize));
                            if if minimize { c.is_lt() } else { c.is_gt() } {
                                *tg = p;
                            }
                        }
                    })
                },
            )?;
            t.gather(&best)
        }
    };

    let head = h.gather(&rep);
    let props = Props::new(
        ColProps {
            sorted: ab.props().head.sorted,
            key: true, // one BUN per distinct head by construction
            dense: false,
            ..ColProps::NONE
        },
        ColProps::NONE,
    );
    let result = Bat::with_props(head, tail, props);
    ctx.record("set-aggregate", algo, started, faults0, &result)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn losses() -> Bat {
        // [class_oid, revenue] as in Q13's final {sum}
        Bat::new(
            Column::from_oids(vec![70, 71, 70, 72, 71, 70]),
            Column::from_dbls(vec![10.0, 5.0, 20.0, 1.0, 2.5, 30.0]),
        )
    }

    #[test]
    fn sum_groups() {
        let ctx = ExecCtx::new();
        let r = set_aggregate(&ctx, AggFunc::Sum, &losses()).unwrap();
        assert_eq!(r.len(), 3);
        let mut pairs: Vec<(u64, f64)> =
            (0..3).map(|i| (r.head().oid_at(i), r.tail().dbl_at(i))).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(pairs[0], (70, 60.0));
        assert_eq!(pairs[1], (71, 7.5));
        assert_eq!(pairs[2], (72, 1.0));
        assert!(r.props().head.key);
    }

    #[test]
    fn merge_variant_on_sorted_head() {
        let ctx = ExecCtx::new().with_trace();
        let b = Bat::with_props(
            Column::from_oids(vec![1, 1, 2, 3, 3]),
            Column::from_ints(vec![4, 6, 10, 1, 1]),
            Props::new(ColProps::SORTED, ColProps::NONE),
        );
        let r = set_aggregate(&ctx, AggFunc::Sum, &b).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "merge");
        assert_eq!(r.head().as_oid_slice().unwrap(), &[1, 2, 3]);
        assert_eq!(r.tail().as_lng_slice().unwrap(), &[10, 10, 2]);
        assert!(r.props().head.sorted);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn count_min_max_avg() {
        let ctx = ExecCtx::new();
        let b = losses();
        let c = set_aggregate(&ctx, AggFunc::Count, &b).unwrap();
        let mn = set_aggregate(&ctx, AggFunc::Min, &b).unwrap();
        let mx = set_aggregate(&ctx, AggFunc::Max, &b).unwrap();
        let av = set_aggregate(&ctx, AggFunc::Avg, &b).unwrap();
        let find = |bat: &Bat, oid: u64| -> AtomValue {
            (0..bat.len())
                .find(|&i| bat.head().oid_at(i) == oid)
                .map(|i| bat.tail().get(i))
                .unwrap()
        };
        assert_eq!(find(&c, 70), AtomValue::Lng(3));
        assert_eq!(find(&mn, 70), AtomValue::Dbl(10.0));
        assert_eq!(find(&mx, 70), AtomValue::Dbl(30.0));
        assert_eq!(find(&av, 70), AtomValue::Dbl(20.0));
    }

    #[test]
    fn min_max_on_strings_per_group() {
        let ctx = ExecCtx::new();
        let b =
            Bat::new(Column::from_oids(vec![1, 1, 2]), Column::from_strs(["pear", "apple", "fig"]));
        let mn = set_aggregate(&ctx, AggFunc::Min, &b).unwrap();
        let v: Vec<(u64, String)> =
            (0..mn.len()).map(|i| (mn.head().oid_at(i), mn.tail().str_at(i).to_string())).collect();
        assert!(v.contains(&(1, "apple".to_string())));
        assert!(v.contains(&(2, "fig".to_string())));
        // sum over strings is an error
        assert!(set_aggregate(&ctx, AggFunc::Sum, &b).is_err());
    }

    #[test]
    fn scalar_aggregates() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![1, 2, 3]), Column::from_ints(vec![5, 9, 2]));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Sum).unwrap(), AtomValue::Lng(16));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Count).unwrap(), AtomValue::Lng(3));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Min).unwrap(), AtomValue::Int(2));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Max).unwrap(), AtomValue::Int(9));
        let avg = aggr_scalar(&ctx, &b, AggFunc::Avg).unwrap();
        assert!(matches!(avg, AtomValue::Dbl(v) if (v - 16.0/3.0).abs() < 1e-12));
    }

    #[test]
    fn empty_scalar_aggregates() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![]), Column::from_ints(vec![]));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Sum).unwrap(), AtomValue::Lng(0));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Count).unwrap(), AtomValue::Lng(0));
        assert!(aggr_scalar(&ctx, &b, AggFunc::Min).is_err());
        assert!(aggr_scalar(&ctx, &b, AggFunc::Avg).is_err());
        assert_eq!(set_aggregate(&ctx, AggFunc::Sum, &b).unwrap().len(), 0);
    }
}
