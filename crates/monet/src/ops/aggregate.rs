//! Aggregation: whole-BAT aggregates and the set-aggregate constructor
//! `{g}` of Figure 4.
//!
//! `{g}(AB) = {a·g(S_a) | a ∈ A ∧ S_a = {b | ab ∈ AB}}`: group over the
//! head of the BAT and compute an aggregate of each group's tail values.
//! "With this construct we can execute nested aggregates in one go, rather
//! than having to do iterative calls on nested collections" — this is what
//! makes the flattened execution of MOA's nested `sum`s fast.

use std::time::Instant;

use crate::atom::{AtomType, AtomValue};
use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::{MonetError, Result};
use crate::pager;
use crate::props::{ColProps, Props};
use crate::typed::{GroupTable, TypedVals};

/// Aggregate functions, usable both as whole-BAT scalars and per-group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// Whole-BAT aggregate over the tail column.
///
/// `sum` over int/lng tails yields `lng` (wide accumulator), over dbl
/// yields `dbl`; `count` yields `lng`; `avg` yields `dbl`; `min`/`max`
/// keep the tail type. `min`/`max`/`avg` over an empty BAT are errors.
pub fn aggr_scalar(ctx: &ExecCtx, ab: &Bat, f: AggFunc) -> Result<AtomValue> {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let t = ab.tail();
    let n = ab.len();
    match f {
        AggFunc::Count => Ok(AtomValue::Lng(n as i64)),
        AggFunc::Sum => match t.atom_type() {
            AtomType::Int => {
                let s = t.as_int_slice().expect("int tail");
                Ok(AtomValue::Lng(s.iter().map(|&x| x as i64).sum()))
            }
            AtomType::Lng => Ok(AtomValue::Lng(t.as_lng_slice().expect("lng tail").iter().sum())),
            AtomType::Dbl => Ok(AtomValue::Dbl(t.as_dbl_slice().expect("dbl tail").iter().sum())),
            ty => Err(MonetError::Unsupported { op: "sum", ty }),
        },
        AggFunc::Avg => {
            if !matches!(t.atom_type(), AtomType::Int | AtomType::Lng | AtomType::Dbl) {
                return Err(MonetError::Unsupported { op: "avg", ty: t.atom_type() });
            }
            if n == 0 {
                return Err(MonetError::Malformed {
                    op: "avg",
                    detail: "average of empty BAT".into(),
                });
            }
            let s: f64 = match t.atom_type() {
                AtomType::Int => t.as_int_slice().unwrap().iter().map(|&x| x as f64).sum(),
                AtomType::Lng => t.as_lng_slice().unwrap().iter().map(|&x| x as f64).sum(),
                _ => t.as_dbl_slice().unwrap().iter().sum(),
            };
            Ok(AtomValue::Dbl(s / n as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            if n == 0 {
                return Err(MonetError::Malformed {
                    op: f.name(),
                    detail: "min/max of empty BAT".into(),
                });
            }
            let best = crate::for_each_typed!(t, |tv| {
                let mut best = 0usize;
                for i in 1..tv.len() {
                    let c = tv.cmp_one(tv.value(i), tv.value(best));
                    let better = if f == AggFunc::Min { c.is_lt() } else { c.is_gt() };
                    if better {
                        best = i;
                    }
                }
                best
            });
            Ok(t.get(best))
        }
    }
}

/// The set-aggregate constructor `{g}(AB)`: one result BUN per distinct
/// head value. Uses streaming runs when the head is sorted, a hash table
/// otherwise (first-occurrence output order).
pub fn set_aggregate(ctx: &ExecCtx, f: AggFunc, ab: &Bat) -> Result<Bat> {
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.head());
        pager::touch_scan(p, ab.tail());
    }
    let tail_ty = ab.tail().atom_type();
    if !matches!(f, AggFunc::Count | AggFunc::Min | AggFunc::Max)
        && !matches!(tail_ty, AtomType::Int | AtomType::Lng | AtomType::Dbl)
    {
        return Err(MonetError::Unsupported { op: "set-aggregate", ty: tail_ty });
    }

    // Assign each BUN to a group; remember one representative position per
    // group for building the result head (and for min/max gathering).
    let h = ab.head();
    let sorted = ab.props().head.sorted;
    let algo = if sorted { "merge" } else { "hash" };
    let (gid_of, rep): (Vec<u32>, Vec<u32>) = crate::for_each_typed!(h, |hv| {
        let n = hv.len();
        let mut gid_of: Vec<u32> = Vec::with_capacity(n);
        let mut rep: Vec<u32> = Vec::new();
        if sorted {
            let mut g: u32 = 0;
            for i in 0..n {
                if i > 0 && !hv.eq_one(hv.value(i), hv.value(i - 1)) {
                    g += 1;
                }
                if rep.len() == g as usize {
                    rep.push(i as u32);
                }
                gid_of.push(g);
            }
        } else {
            let mut table = GroupTable::with_capacity(n);
            for i in 0..n {
                let v = hv.value(i);
                let hh = hv.hash_one(v);
                let (g, _) =
                    table.find_or_insert(hh, i as u32, |r| hv.eq_one(hv.value(r as usize), v));
                gid_of.push(g);
            }
            rep = table.reps().to_vec();
        }
        (gid_of, rep)
    });

    let ngroups = rep.len();
    let t = ab.tail();
    let tail: Column = match f {
        AggFunc::Count => {
            let mut counts = vec![0i64; ngroups];
            for &g in &gid_of {
                counts[g as usize] += 1;
            }
            Column::from_lngs(counts)
        }
        AggFunc::Sum => match tail_ty {
            AtomType::Int => {
                let slice = t.as_int_slice().expect("int tail");
                let mut sums = vec![0i64; ngroups];
                for (i, &g) in gid_of.iter().enumerate() {
                    sums[g as usize] += slice[i] as i64;
                }
                Column::from_lngs(sums)
            }
            AtomType::Lng => {
                let slice = t.as_lng_slice().expect("lng tail");
                let mut sums = vec![0i64; ngroups];
                for (i, &g) in gid_of.iter().enumerate() {
                    sums[g as usize] += slice[i];
                }
                Column::from_lngs(sums)
            }
            _ => {
                let mut sums = vec![0f64; ngroups];
                let slice = t.as_dbl_slice().expect("dbl tail");
                for (i, &g) in gid_of.iter().enumerate() {
                    sums[g as usize] += slice[i];
                }
                Column::from_dbls(sums)
            }
        },
        AggFunc::Avg => {
            let mut sums = vec![0f64; ngroups];
            let mut counts = vec![0u64; ngroups];
            match tail_ty {
                AtomType::Int => {
                    let slice = t.as_int_slice().expect("int tail");
                    for (i, &g) in gid_of.iter().enumerate() {
                        sums[g as usize] += slice[i] as f64;
                        counts[g as usize] += 1;
                    }
                }
                AtomType::Lng => {
                    let slice = t.as_lng_slice().expect("lng tail");
                    for (i, &g) in gid_of.iter().enumerate() {
                        sums[g as usize] += slice[i] as f64;
                        counts[g as usize] += 1;
                    }
                }
                _ => {
                    let slice = t.as_dbl_slice().expect("dbl tail");
                    for (i, &g) in gid_of.iter().enumerate() {
                        sums[g as usize] += slice[i];
                        counts[g as usize] += 1;
                    }
                }
            }
            Column::from_dbls(sums.iter().zip(&counts).map(|(s, &c)| s / c as f64).collect())
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Vec<u32> = rep.clone();
            crate::for_each_typed!(t, |tv| {
                for (i, &g) in gid_of.iter().enumerate() {
                    let b = &mut best[g as usize];
                    let c = tv.cmp_one(tv.value(i), tv.value(*b as usize));
                    let better = if f == AggFunc::Min { c.is_lt() } else { c.is_gt() };
                    if better {
                        *b = i as u32;
                    }
                }
            });
            t.gather(&best)
        }
    };

    let head = h.gather(&rep);
    let props = Props::new(
        ColProps {
            sorted: ab.props().head.sorted,
            key: true, // one BUN per distinct head by construction
            dense: false,
        },
        ColProps::NONE,
    );
    let result = Bat::with_props(head, tail, props);
    ctx.record("set-aggregate", algo, started, faults0, &result);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn losses() -> Bat {
        // [class_oid, revenue] as in Q13's final {sum}
        Bat::new(
            Column::from_oids(vec![70, 71, 70, 72, 71, 70]),
            Column::from_dbls(vec![10.0, 5.0, 20.0, 1.0, 2.5, 30.0]),
        )
    }

    #[test]
    fn sum_groups() {
        let ctx = ExecCtx::new();
        let r = set_aggregate(&ctx, AggFunc::Sum, &losses()).unwrap();
        assert_eq!(r.len(), 3);
        let mut pairs: Vec<(u64, f64)> =
            (0..3).map(|i| (r.head().oid_at(i), r.tail().dbl_at(i))).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(pairs[0], (70, 60.0));
        assert_eq!(pairs[1], (71, 7.5));
        assert_eq!(pairs[2], (72, 1.0));
        assert!(r.props().head.key);
    }

    #[test]
    fn merge_variant_on_sorted_head() {
        let ctx = ExecCtx::new().with_trace();
        let b = Bat::with_props(
            Column::from_oids(vec![1, 1, 2, 3, 3]),
            Column::from_ints(vec![4, 6, 10, 1, 1]),
            Props::new(ColProps::SORTED, ColProps::NONE),
        );
        let r = set_aggregate(&ctx, AggFunc::Sum, &b).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "merge");
        assert_eq!(r.head().as_oid_slice().unwrap(), &[1, 2, 3]);
        assert_eq!(r.tail().as_lng_slice().unwrap(), &[10, 10, 2]);
        assert!(r.props().head.sorted);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn count_min_max_avg() {
        let ctx = ExecCtx::new();
        let b = losses();
        let c = set_aggregate(&ctx, AggFunc::Count, &b).unwrap();
        let mn = set_aggregate(&ctx, AggFunc::Min, &b).unwrap();
        let mx = set_aggregate(&ctx, AggFunc::Max, &b).unwrap();
        let av = set_aggregate(&ctx, AggFunc::Avg, &b).unwrap();
        let find = |bat: &Bat, oid: u64| -> AtomValue {
            (0..bat.len())
                .find(|&i| bat.head().oid_at(i) == oid)
                .map(|i| bat.tail().get(i))
                .unwrap()
        };
        assert_eq!(find(&c, 70), AtomValue::Lng(3));
        assert_eq!(find(&mn, 70), AtomValue::Dbl(10.0));
        assert_eq!(find(&mx, 70), AtomValue::Dbl(30.0));
        assert_eq!(find(&av, 70), AtomValue::Dbl(20.0));
    }

    #[test]
    fn min_max_on_strings_per_group() {
        let ctx = ExecCtx::new();
        let b =
            Bat::new(Column::from_oids(vec![1, 1, 2]), Column::from_strs(["pear", "apple", "fig"]));
        let mn = set_aggregate(&ctx, AggFunc::Min, &b).unwrap();
        let v: Vec<(u64, String)> =
            (0..mn.len()).map(|i| (mn.head().oid_at(i), mn.tail().str_at(i).to_string())).collect();
        assert!(v.contains(&(1, "apple".to_string())));
        assert!(v.contains(&(2, "fig".to_string())));
        // sum over strings is an error
        assert!(set_aggregate(&ctx, AggFunc::Sum, &b).is_err());
    }

    #[test]
    fn scalar_aggregates() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![1, 2, 3]), Column::from_ints(vec![5, 9, 2]));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Sum).unwrap(), AtomValue::Lng(16));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Count).unwrap(), AtomValue::Lng(3));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Min).unwrap(), AtomValue::Int(2));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Max).unwrap(), AtomValue::Int(9));
        let avg = aggr_scalar(&ctx, &b, AggFunc::Avg).unwrap();
        assert!(matches!(avg, AtomValue::Dbl(v) if (v - 16.0/3.0).abs() < 1e-12));
    }

    #[test]
    fn empty_scalar_aggregates() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![]), Column::from_ints(vec![]));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Sum).unwrap(), AtomValue::Lng(0));
        assert_eq!(aggr_scalar(&ctx, &b, AggFunc::Count).unwrap(), AtomValue::Lng(0));
        assert!(aggr_scalar(&ctx, &b, AggFunc::Min).is_err());
        assert!(aggr_scalar(&ctx, &b, AggFunc::Avg).is_err());
        assert_eq!(set_aggregate(&ctx, AggFunc::Sum, &b).unwrap().len(), 0);
    }
}
