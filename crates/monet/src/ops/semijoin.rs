//! Semijoin: `AB.semijoin(CD) = {ab | ab ∈ AB ∧ ∃cd ∈ CD: a = c}`.
//!
//! "The semijoin operation is important, since it is heavily used for
//! re-assembling vertically partitioned fragments" (Section 4.2). The
//! kernel contains multiple implementations and chooses at run time
//! (Section 5.1/5.2.1):
//!
//! * `sync` — the join columns are exactly equal: return a copy of the
//!   left operand;
//! * `merge` — both heads sorted: linear two-pointer pass;
//! * `datavector` — the left operand carries a datavector and the right
//!   head is a (duplicate-free) oid selection: positional fetch through the
//!   memoized LOOKUP array;
//! * `hash` — the general fallback.

use std::time::Instant;

use crate::bat::Bat;
use crate::ctx::ExecCtx;
use crate::error::Result;
use crate::pager;
use crate::props::{ColProps, Props};
use crate::typed::TypedVals;

use super::check_comparable;

/// Dynamic-dispatch semijoin.
pub fn semijoin(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/semijoin")?;
    check_comparable("semijoin", ab.head().atom_type(), cd.head().atom_type())?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    let (result, algo) = if ab.synced(cd) {
        (semijoin_sync(ab), "sync")
    } else if ab.props().head.sorted && cd.props().head.sorted {
        (semijoin_merge(ctx, ab, cd), "merge")
    } else if ab.accel().datavector.is_some() && cd.head().is_oidlike() && cd.props().head.key {
        let dv = ab.accel().datavector.clone().unwrap();
        (semijoin_datavector(ctx, &dv, cd), "datavector")
    } else {
        (semijoin_hash(ctx, ab, cd), "hash")
    };
    ctx.record("semijoin", algo, started, faults0, &result)?;
    Ok(result)
}

/// Anti-semijoin (`kdiff`): `{ab | ab ∈ AB ∧ ¬∃cd ∈ CD: a = c}` — the
/// building block for MOA `difference` on identified sets.
pub fn antijoin(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/antijoin")?;
    check_comparable("antijoin", ab.head().atom_type(), cd.head().atom_type())?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    let (result, algo) =
        if ab.synced(cd) { (ab.slice(0, 0), "sync") } else { (antijoin_hash(ctx, ab, cd), "hash") };
    ctx.record("antijoin", algo, started, faults0, &result)?;
    Ok(result)
}

/// `syncsemijoin`: join columns exactly equal — a copy of the left operand.
fn semijoin_sync(ab: &Bat) -> Bat {
    ab.clone()
}

/// Merge semijoin over two head-sorted operands; emits left BUNs in order.
fn semijoin_merge(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.head());
        pager::touch_scan(p, cd.head());
    }
    let idx = crate::for_each_typed2!(ab.head(), cd.head(), |ah, ch| {
        let mut idx: Vec<u32> = Vec::with_capacity(ab.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < ah.len() && j < ch.len() {
            match ah.cmp_one(ah.value(i), ch.value(j)) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    idx.push(i as u32);
                    i += 1;
                    // j stays: further equal a's match the same c.
                }
            }
        }
        idx
    });
    build_subset(ctx, ab, &idx)
}

/// Datavector semijoin (pseudo code of Section 5.2.1): fetch head/tail
/// positionally through the (memoized) LOOKUP array; result is in
/// right-operand order and its head column is *shared* across semijoins
/// with the same selection, making those results synced.
fn semijoin_datavector(ctx: &ExecCtx, dv: &crate::accel::datavector::Datavector, cd: &Bat) -> Bat {
    let lookup = dv.lookup(ctx, cd.head());
    if let Some(p) = ctx.pager.as_deref() {
        for &pos in lookup.positions.iter() {
            pager::touch_fetch(p, dv.vector(), pos as usize);
        }
    }
    let tail = dv.vector().gather(&lookup.positions);
    let cp = cd.props();
    // Positions follow right-operand order; the extent is ascending, so the
    // result head is sorted/key exactly when the right head is.
    let props = Props::new(
        ColProps { sorted: cp.head.sorted, key: cp.head.key, dense: false, ..ColProps::NONE },
        ColProps::NONE,
    );
    Bat::with_props(lookup.head.clone(), tail, props)
}

/// Hash semijoin: hash the right heads, scan the left operand in order.
fn semijoin_hash(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, cd.head());
        pager::touch_scan(p, ab.head());
    }
    let rindex =
        cd.accel().head_hash.clone().unwrap_or_else(|| {
            std::sync::Arc::new(crate::accel::hash::HashIndex::build(cd.head()))
        });
    let idx = crate::for_each_typed2!(ab.head(), cd.head(), |ah, ch| {
        let mut idx: Vec<u32> = Vec::with_capacity(ab.len());
        for i in 0..ah.len() {
            let v = ah.value(i);
            let h = ah.hash_one(v);
            if rindex.candidates(h).any(|p| ch.eq_one(ch.value(p), v)) {
                idx.push(i as u32);
            }
        }
        idx
    });
    build_subset(ctx, ab, &idx)
}

fn antijoin_hash(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, cd.head());
        pager::touch_scan(p, ab.head());
    }
    let rindex =
        cd.accel().head_hash.clone().unwrap_or_else(|| {
            std::sync::Arc::new(crate::accel::hash::HashIndex::build(cd.head()))
        });
    let idx = crate::for_each_typed2!(ab.head(), cd.head(), |ah, ch| {
        let mut idx: Vec<u32> = Vec::with_capacity(ab.len());
        for i in 0..ah.len() {
            let v = ah.value(i);
            let h = ah.hash_one(v);
            if !rindex.candidates(h).any(|p| ch.eq_one(ch.value(p), v)) {
                idx.push(i as u32);
            }
        }
        idx
    });
    build_subset(ctx, ab, &idx)
}

/// The subset propagation rule (Section 5.1): "a semijoin will propagate
/// the key properties on both head and tail of its left operand onto the
/// result" — and order survives subsequences too. Shared by `semijoin`,
/// `antijoin` and the pair-set `diff`/`intersect`, and reused by the plan
/// optimizer's static property inference. Note the rule covers only the
/// left-order implementations; the datavector variant emits in *right*
/// operand order, so the optimizer weakens its prediction when a
/// datavector may be in play.
pub fn propagated_props(ab: Props) -> Props {
    Props::new(
        ColProps { sorted: ab.head.sorted, key: ab.head.key, dense: false, ..ColProps::NONE },
        ColProps { sorted: ab.tail.sorted, key: ab.tail.key, dense: false, ..ColProps::NONE },
    )
}

/// A subset of AB's BUNs in AB order.
fn build_subset(ctx: &ExecCtx, ab: &Bat, idx: &[u32]) -> Bat {
    if let Some(p) = ctx.pager.as_deref() {
        for &i in idx {
            pager::touch_fetch(p, ab.tail(), i as usize);
        }
    }
    let head = ab.head().gather(idx);
    let tail = ab.tail().gather(idx);
    Bat::with_props(head, tail, propagated_props(ab.props()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::datavector::Datavector;
    use crate::atom::AtomValue;
    use crate::column::Column;

    fn attr_bat() -> Bat {
        Bat::new(
            Column::from_oids(vec![10, 11, 12, 13, 14]),
            Column::from_ints(vec![5, 3, 9, 3, 7]),
        )
    }

    fn selection(oids: Vec<u64>) -> Bat {
        Bat::with_inferred_props(Column::from_oids(oids), Column::void(0, 0).slice(0, 0))
    }

    fn sel(oids: Vec<u64>) -> Bat {
        let n = oids.len();
        Bat::with_inferred_props(Column::from_oids(oids), Column::void(0, n))
    }

    #[test]
    fn hash_semijoin_filters_in_left_order() {
        let ctx = ExecCtx::new();
        let ab = attr_bat();
        let cd = sel(vec![13, 10, 99]);
        let r = semijoin(&ctx, &ab, &cd).unwrap();
        assert_eq!(r.head().as_oid_slice().unwrap(), &[10, 13]);
        assert_eq!(r.tail().as_int_slice().unwrap(), &[5, 3]);
    }

    #[test]
    fn merge_semijoin_when_both_sorted() {
        let ctx = ExecCtx::new().with_trace();
        let ab = Bat::with_inferred_props(
            Column::from_oids(vec![1, 2, 2, 5, 8]),
            Column::from_ints(vec![10, 20, 21, 50, 80]),
        );
        let cd = sel(vec![2, 5, 9]);
        let r = semijoin(&ctx, &ab, &cd).unwrap();
        assert_eq!(r.head().as_oid_slice().unwrap(), &[2, 2, 5]);
        assert_eq!(ctx.take_trace()[0].algo, "merge");
        assert!(r.validate().is_ok());
    }

    #[test]
    fn sync_semijoin_returns_copy() {
        let ctx = ExecCtx::new().with_trace();
        let head = Column::from_oids(vec![3, 1, 2]);
        let ab = Bat::new(head.clone(), Column::from_ints(vec![30, 10, 20]));
        let cd = Bat::new(head, Column::from_dbls(vec![0.3, 0.1, 0.2]));
        let r = semijoin(&ctx, &ab, &cd).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(ctx.take_trace()[0].algo, "sync");
        assert!(r.synced(&ab));
    }

    #[test]
    fn datavector_semijoin_and_synced_results() {
        let ctx = ExecCtx::new().with_trace();
        // Two attributes of the same class, both tail-unsorted w.r.t. oid,
        // each with a datavector over the *shared* class extent (as after
        // the Section 6 load).
        let extent = crate::accel::datavector::Extent::new(crate::column::Column::from_oids(vec![
            10, 11, 12, 13,
        ]));
        let dv_price = Datavector::new(
            std::sync::Arc::clone(&extent),
            crate::column::Column::from_dbls(vec![1.0, 2.0, 3.0, 4.0]),
        );
        let dv_disc = Datavector::new(
            std::sync::Arc::clone(&extent),
            crate::column::Column::from_dbls(vec![0.1, 0.2, 0.3, 0.4]),
        );
        let mut price = Bat::new(
            Column::from_oids(vec![12, 10, 13, 11]),
            Column::from_dbls(vec![3.0, 1.0, 4.0, 2.0]),
        );
        price.set_datavector(std::sync::Arc::new(dv_price));
        let mut disc = Bat::new(
            Column::from_oids(vec![11, 13, 10, 12]),
            Column::from_dbls(vec![0.2, 0.4, 0.1, 0.3]),
        );
        disc.set_datavector(std::sync::Arc::new(dv_disc));

        let critems = sel(vec![11, 13]);
        let prices = semijoin(&ctx, &price, &critems).unwrap();
        let discounts = semijoin(&ctx, &disc, &critems).unwrap();
        let trace = ctx.take_trace();
        assert_eq!(trace[0].algo, "datavector");
        assert_eq!(trace[1].algo, "datavector");
        assert_eq!(prices.head().as_oid_slice().unwrap(), &[11, 13]);
        assert_eq!(prices.tail().as_dbl_slice().unwrap(), &[2.0, 4.0]);
        assert_eq!(discounts.tail().as_dbl_slice().unwrap(), &[0.2, 0.4]);
        // The key effect of Section 6.2.1: results of successive datavector
        // semijoins with the same selection are synced.
        assert!(prices.synced(&discounts));
    }

    #[test]
    fn all_variants_agree() {
        let ctx = ExecCtx::new();
        let ab = attr_bat();
        let cd = sel(vec![14, 10, 12]);
        let hash = semijoin_hash(&ctx, &ab, &cd);

        // merge variant needs both sorted
        let perm = ab.head().sort_perm();
        let ab_sorted = Bat::with_inferred_props(ab.head().gather(&perm), ab.tail().gather(&perm));
        let cperm = cd.head().sort_perm();
        let cd_sorted =
            Bat::with_inferred_props(cd.head().gather(&cperm), cd.tail().gather(&cperm));
        let merge = semijoin_merge(&ctx, &ab_sorted, &cd_sorted);

        // datavector variant
        let mut ab_dv = ab.clone();
        ab_dv.set_datavector(std::sync::Arc::new(Datavector::from_unordered(&ab)));
        let dvres = semijoin_datavector(&ctx, &ab_dv.accel().datavector.clone().unwrap(), &cd);

        let norm = |b: &Bat| {
            let mut v: Vec<(u64, i32)> =
                (0..b.len()).map(|i| (b.head().oid_at(i), b.tail().int_at(i))).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&hash), norm(&merge));
        assert_eq!(norm(&hash), norm(&dvres));
    }

    #[test]
    fn antijoin_complements_semijoin() {
        let ctx = ExecCtx::new();
        let ab = attr_bat();
        let cd = sel(vec![11, 13]);
        let sj = semijoin(&ctx, &ab, &cd).unwrap();
        let aj = antijoin(&ctx, &ab, &cd).unwrap();
        assert_eq!(sj.len() + aj.len(), ab.len());
        assert_eq!(aj.head().as_oid_slice().unwrap(), &[10, 12, 14]);
    }

    #[test]
    fn empty_operands() {
        let ctx = ExecCtx::new();
        let ab = attr_bat();
        let empty = selection(vec![]);
        assert_eq!(semijoin(&ctx, &ab, &empty).unwrap().len(), 0);
        assert_eq!(antijoin(&ctx, &ab, &empty).unwrap().len(), ab.len());
        assert_eq!(semijoin(&ctx, &empty, &ab).unwrap().len(), 0);
        let _ = AtomValue::Int(0);
    }
}
