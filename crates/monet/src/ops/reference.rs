//! Generic row-wise **reference implementations** of the BAT operators.
//!
//! These are the pre-typed-kernel forms of each operator: every element
//! access goes through the generic `Column` accessors (`get`, `cmp_val`,
//! `cmp_at`, `hash_at`), paying one type dispatch per row. They are kept
//! alive — deliberately slow and obviously correct — as the oracle that the
//! `specialized-vs-generic` property suite (`tests/ops_props.rs`) compares
//! the monomorphized kernels in the sibling modules against, on random
//! inputs across every atom type.
//!
//! Output *order* mirrors the specialized operators exactly (left-operand
//! order, ascending positions, first-occurrence grouping), so tests can
//! compare results pair-for-pair instead of as multisets. Reference ops
//! take no `ExecCtx` and claim no properties.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::atom::{AtomType, AtomValue, Oid};
use crate::bat::Bat;
use crate::column::Column;
use crate::error::{MonetError, Result};
use crate::ops::multiplex::{apply_scalar, MultArg};
use crate::ops::{AggFunc, ScalarFunc};

fn gather_pair(ab: &Bat, idx: &[u32]) -> Bat {
    Bat::new(ab.head().gather(idx), ab.tail().gather(idx))
}

/// Point selection by scanning with per-row `cmp_val`.
pub fn select_eq(ab: &Bat, v: &AtomValue) -> Bat {
    let tail = ab.tail();
    let idx: Vec<u32> =
        (0..ab.len()).filter(|&i| tail.cmp_val(i, v).is_eq()).map(|i| i as u32).collect();
    gather_pair(ab, &idx)
}

/// Range selection by scanning with per-row `cmp_val`.
pub fn select_range(
    ab: &Bat,
    lo: Option<&AtomValue>,
    hi: Option<&AtomValue>,
    inc_lo: bool,
    inc_hi: bool,
) -> Bat {
    let tail = ab.tail();
    let keep = |i: usize| -> bool {
        if let Some(v) = lo {
            let c = tail.cmp_val(i, v);
            if c.is_lt() || (!inc_lo && c.is_eq()) {
                return false;
            }
        }
        if let Some(v) = hi {
            let c = tail.cmp_val(i, v);
            if c.is_gt() || (!inc_hi && c.is_eq()) {
                return false;
            }
        }
        true
    };
    let idx: Vec<u32> = (0..ab.len()).filter(|&i| keep(i)).map(|i| i as u32).collect();
    gather_pair(ab, &idx)
}

/// Nested-loop equi-join (left order, right positions ascending).
pub fn join(ab: &Bat, cd: &Bat) -> Bat {
    let (bt, ch) = (ab.tail(), cd.head());
    let mut li = Vec::new();
    let mut ri = Vec::new();
    for i in 0..ab.len() {
        for j in 0..cd.len() {
            if bt.eq_at(i, ch, j) {
                li.push(i as u32);
                ri.push(j as u32);
            }
        }
    }
    Bat::new(ab.head().gather(&li), cd.tail().gather(&ri))
}

/// Nested-loop theta-join for θ ∈ {<, ≤, >, ≥, ≠}.
pub fn join_theta(ab: &Bat, cd: &Bat, theta: ScalarFunc) -> Bat {
    let keep = |o: Ordering| match theta {
        ScalarFunc::Lt => o.is_lt(),
        ScalarFunc::Le => o.is_le(),
        ScalarFunc::Gt => o.is_gt(),
        ScalarFunc::Ge => o.is_ge(),
        ScalarFunc::Ne => !o.is_eq(),
        _ => panic!("not a theta operator: {theta:?}"),
    };
    let (bt, ch) = (ab.tail(), cd.head());
    let mut li = Vec::new();
    let mut ri = Vec::new();
    for i in 0..ab.len() {
        for j in 0..cd.len() {
            if keep(bt.cmp_at(i, ch, j)) {
                li.push(i as u32);
                ri.push(j as u32);
            }
        }
    }
    Bat::new(ab.head().gather(&li), cd.tail().gather(&ri))
}

/// Scan semijoin: keep left BUNs whose head occurs in the right heads.
pub fn semijoin(ab: &Bat, cd: &Bat) -> Bat {
    let (ah, ch) = (ab.head(), cd.head());
    let idx: Vec<u32> = (0..ab.len())
        .filter(|&i| (0..cd.len()).any(|j| ah.eq_at(i, ch, j)))
        .map(|i| i as u32)
        .collect();
    gather_pair(ab, &idx)
}

/// Scan anti-semijoin.
pub fn antijoin(ab: &Bat, cd: &Bat) -> Bat {
    let (ah, ch) = (ab.head(), cd.head());
    let idx: Vec<u32> = (0..ab.len())
        .filter(|&i| !(0..cd.len()).any(|j| ah.eq_at(i, ch, j)))
        .map(|i| i as u32)
        .collect();
    gather_pair(ab, &idx)
}

/// Unary group ids in canonical (first-appearance, 0-based) numbering.
pub fn group1_gids(ab: &Bat) -> Vec<Oid> {
    let t = ab.tail();
    let mut seen: HashMap<u64, Vec<(u32, Oid)>> = HashMap::new();
    let mut gids = Vec::with_capacity(ab.len());
    let mut next: Oid = 0;
    for i in 0..ab.len() {
        let h = t.hash_at(i);
        let bucket = seen.entry(h).or_default();
        let gid = bucket.iter().find(|(k, _)| t.eq_at(*k as usize, t, i)).map(|(_, g)| *g);
        let g = gid.unwrap_or_else(|| {
            let g = next;
            next += 1;
            bucket.push((i as u32, g));
            g
        });
        gids.push(g);
    }
    gids
}

/// Binary (refining) group ids in canonical numbering; `Err` when a head of
/// `ab` has no counterpart in `cd`.
pub fn group2_gids(ab: &Bat, cd: &Bat) -> Result<Vec<Oid>> {
    let (ah, ch) = (ab.head(), cd.head());
    let mut align = Vec::with_capacity(ab.len());
    for i in 0..ab.len() {
        match (0..cd.len()).find(|&j| ch.eq_at(j, ah, i)) {
            Some(j) => align.push(j),
            None => {
                return Err(MonetError::Malformed {
                    op: "group",
                    detail: format!("reference group2: no counterpart for row {i}"),
                })
            }
        }
    }
    let (bt, dt) = (ab.tail(), cd.tail());
    let mut key_of: Vec<(AtomValue, AtomValue)> = Vec::new();
    let mut gids = Vec::with_capacity(ab.len());
    for i in 0..ab.len() {
        let key = (bt.get(i), dt.get(align[i]));
        let g = match key_of.iter().position(|k| *k == key) {
            Some(g) => g,
            None => {
                key_of.push(key);
                key_of.len() - 1
            }
        };
        gids.push(g as Oid);
    }
    Ok(gids)
}

/// First occurrence of every distinct BUN pair, in operand order.
pub fn unique(ab: &Bat) -> Bat {
    let (h, t) = (ab.head(), ab.tail());
    let mut idx: Vec<u32> = Vec::new();
    for i in 0..ab.len() {
        let dup = idx.iter().any(|&k| h.eq_at(k as usize, h, i) && t.eq_at(k as usize, t, i));
        if !dup {
            idx.push(i as u32);
        }
    }
    gather_pair(ab, &idx)
}

/// Stable reorder ascending on tail values.
pub fn sort_tail(ab: &Bat) -> Bat {
    let mut idx: Vec<u32> = (0..ab.len() as u32).collect();
    let t = ab.tail();
    idx.sort_by(|&a, &b| t.cmp_at(a as usize, t, b as usize));
    gather_pair(ab, &idx)
}

/// The `n` extreme-tail BUNs: full stable sort by (tail value in the
/// requested direction, then operand position), truncate to `n`.
pub fn topn(ab: &Bat, n: usize, descending: bool) -> Bat {
    let t = ab.tail();
    let mut idx: Vec<u32> = (0..ab.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        let c = t.cmp_at(a as usize, t, b as usize);
        let c = if descending { c.reverse() } else { c };
        c.then(a.cmp(&b))
    });
    idx.truncate(n);
    gather_pair(ab, &idx)
}

/// Whole-BAT aggregate over the tail, row order, generic accessors.
pub fn aggr_scalar(ab: &Bat, f: AggFunc) -> Result<AtomValue> {
    let t = ab.tail();
    let n = ab.len();
    match f {
        AggFunc::Count => Ok(AtomValue::Lng(n as i64)),
        AggFunc::Sum => match t.atom_type() {
            AtomType::Int => Ok(AtomValue::Lng((0..n).map(|i| t.int_at(i) as i64).sum())),
            AtomType::Lng => Ok(AtomValue::Lng((0..n).map(|i| t.lng_at(i)).sum())),
            AtomType::Dbl => Ok(AtomValue::Dbl((0..n).map(|i| t.dbl_at(i)).sum())),
            ty => Err(MonetError::Unsupported { op: "sum", ty }),
        },
        AggFunc::Avg => {
            if n == 0 {
                return Err(MonetError::Malformed { op: "avg", detail: "empty".into() });
            }
            let mut s = 0.0;
            for i in 0..n {
                s += t
                    .get(i)
                    .as_f64()
                    .ok_or(MonetError::Unsupported { op: "avg", ty: t.atom_type() })?;
            }
            Ok(AtomValue::Dbl(s / n as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            if n == 0 {
                return Err(MonetError::Malformed { op: f.name(), detail: "empty".into() });
            }
            let mut best = 0usize;
            for i in 1..n {
                let c = t.cmp_at(i, t, best);
                if if f == AggFunc::Min { c.is_lt() } else { c.is_gt() } {
                    best = i;
                }
            }
            Ok(t.get(best))
        }
    }
}

/// Set-aggregate `{g}`: group over heads in first-occurrence order, then
/// aggregate each group's tail values in row order.
pub fn set_aggregate(f: AggFunc, ab: &Bat) -> Result<Bat> {
    let tail_ty = ab.tail().atom_type();
    if !matches!(f, AggFunc::Count | AggFunc::Min | AggFunc::Max)
        && !matches!(tail_ty, AtomType::Int | AtomType::Lng | AtomType::Dbl)
    {
        return Err(MonetError::Unsupported { op: "set-aggregate", ty: tail_ty });
    }
    let h = ab.head();
    let mut rep: Vec<u32> = Vec::new();
    let mut gid_of: Vec<u32> = Vec::with_capacity(ab.len());
    for i in 0..ab.len() {
        let g = match rep.iter().position(|&r| h.eq_at(r as usize, h, i)) {
            Some(g) => g,
            None => {
                rep.push(i as u32);
                rep.len() - 1
            }
        };
        gid_of.push(g as u32);
    }
    let ngroups = rep.len();
    let t = ab.tail();
    let tail: Column = match f {
        AggFunc::Count => {
            let mut counts = vec![0i64; ngroups];
            for &g in &gid_of {
                counts[g as usize] += 1;
            }
            Column::from_lngs(counts)
        }
        AggFunc::Sum => match tail_ty {
            AtomType::Int | AtomType::Lng => {
                let mut sums = vec![0i64; ngroups];
                for (i, &g) in gid_of.iter().enumerate() {
                    sums[g as usize] +=
                        if tail_ty == AtomType::Int { t.int_at(i) as i64 } else { t.lng_at(i) };
                }
                Column::from_lngs(sums)
            }
            _ => {
                let mut sums = vec![0f64; ngroups];
                for (i, &g) in gid_of.iter().enumerate() {
                    sums[g as usize] += t.dbl_at(i);
                }
                Column::from_dbls(sums)
            }
        },
        AggFunc::Avg => {
            let mut sums = vec![0f64; ngroups];
            let mut counts = vec![0u64; ngroups];
            for (i, &g) in gid_of.iter().enumerate() {
                sums[g as usize] += t.get(i).as_f64().expect("numeric tail");
                counts[g as usize] += 1;
            }
            Column::from_dbls(sums.iter().zip(&counts).map(|(s, &c)| s / c as f64).collect())
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Vec<u32> = rep.clone();
            for (i, &g) in gid_of.iter().enumerate() {
                let b = &mut best[g as usize];
                let c = t.cmp_at(i, t, *b as usize);
                if if f == AggFunc::Min { c.is_lt() } else { c.is_gt() } {
                    *b = i as u32;
                }
            }
            t.gather(&best)
        }
    };
    Ok(Bat::new(h.gather(&rep), tail))
}

/// Row-at-a-time synced multiplex: the original generic loop — a boxed
/// `AtomValue` scratch vector and `apply_scalar` per row.
pub fn multiplex_synced(f: ScalarFunc, args: &[MultArg]) -> Result<Bat> {
    let first = args
        .iter()
        .find_map(|a| match a {
            MultArg::Bat(b) => Some(b),
            MultArg::Const(_) => None,
        })
        .ok_or_else(|| MonetError::Malformed {
            op: "multiplex",
            detail: "at least one BAT argument required".into(),
        })?;
    let n = first.len();
    let mut out: Vec<AtomValue> = Vec::with_capacity(n);
    let mut scratch: Vec<AtomValue> = Vec::with_capacity(args.len());
    for i in 0..n {
        scratch.clear();
        for a in args {
            scratch.push(match a {
                MultArg::Bat(b) => b.tail().get(i),
                MultArg::Const(v) => v.clone(),
            });
        }
        out.push(apply_scalar(f, &scratch)?);
    }
    let ty = out
        .first()
        .map(AtomValue::atom_type)
        .unwrap_or_else(|| crate::ops::multiplex::result_type_hint(f, args));
    Ok(Bat::new(first.head().clone(), Column::from_atoms(ty, out)))
}

fn pair_eq(a: &Bat, i: usize, b: &Bat, j: usize) -> bool {
    a.head().eq_at(i, b.head(), j) && a.tail().eq_at(i, b.tail(), j)
}

/// Set union of BUN pairs (left first, first-occurrence dedup).
pub fn union_pairs(ab: &Bat, cd: &Bat) -> Bat {
    let mut heads: Vec<AtomValue> = Vec::new();
    let mut tails: Vec<AtomValue> = Vec::new();
    let mut kept: Vec<(u8, u32)> = Vec::new();
    for (tag, src) in [(0u8, ab), (1u8, cd)] {
        for i in 0..src.len() {
            let dup = kept.iter().any(|&(t, p)| {
                let other = if t == 0 { ab } else { cd };
                pair_eq(other, p as usize, src, i)
            });
            if !dup {
                kept.push((tag, i as u32));
                heads.push(src.head().get(i));
                tails.push(src.tail().get(i));
            }
        }
    }
    Bat::new(
        Column::from_atoms(ab.head().atom_type(), heads),
        Column::from_atoms(ab.tail().atom_type(), tails),
    )
}

/// Pairs of `AB` not occurring in `CD`.
pub fn diff_pairs(ab: &Bat, cd: &Bat) -> Bat {
    let idx: Vec<u32> = (0..ab.len())
        .filter(|&i| !(0..cd.len()).any(|j| pair_eq(cd, j, ab, i)))
        .map(|i| i as u32)
        .collect();
    gather_pair(ab, &idx)
}

/// Pairs of `AB` also occurring in `CD`.
pub fn intersect_pairs(ab: &Bat, cd: &Bat) -> Bat {
    let idx: Vec<u32> = (0..ab.len())
        .filter(|&i| (0..cd.len()).any(|j| pair_eq(cd, j, ab, i)))
        .map(|i| i as u32)
        .collect();
    gather_pair(ab, &idx)
}

/// Row-wise concatenation via generic atom values.
pub fn concat_bats(ab: &Bat, cd: &Bat) -> Bat {
    let pick = |t: AtomType| if t == AtomType::Void { AtomType::Oid } else { t };
    let devoid = |v: AtomValue| match v {
        AtomValue::Void(o) => AtomValue::Oid(o),
        other => other,
    };
    let head = Column::from_atoms(
        pick(ab.head().atom_type()),
        ab.head().iter().chain(cd.head().iter()).map(devoid),
    );
    let tail = Column::from_atoms(
        pick(ab.tail().atom_type()),
        ab.tail().iter().chain(cd.tail().iter()).map(devoid),
    );
    Bat::new(head, tail)
}
