//! Grouping: `AB.group` and `AB.group(CD)` of Figure 4.
//!
//! The `group` operation introduces new oids for uniquely occurring values
//! in a BAT column: `{a·o_b | ab ∈ AB ∧ o_b = unique_oid(b)}`. Groupings on
//! one attribute use the unary version; multi-attribute groupings follow up
//! with binary `group` invocations until all attributes are processed —
//! this is how SQL `GROUP BY` and MOA `nest` are implemented.
//!
//! Hash grouping uses the presized bucket-chained [`GroupTable`] (the same
//! layout as `accel::hash::HashIndex`) inside a monomorphized typed loop —
//! no per-row type dispatch, no per-bucket allocations.

use std::time::Instant;

use crate::atom::Oid;
use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::{MonetError, Result};
use crate::pager;
use crate::props::{ColProps, Props};
use crate::typed::{GroupTable, TypedVals};

/// First-occurrence hash grouping of one column: `(gid per row, one
/// representative row per group)`, gids dense in order of first
/// appearance. This is the shared core of `group1` and the hash path of
/// `set_aggregate`.
///
/// With `threads > 1` the rows are grouped morsel-parallel with one
/// per-worker [`GroupTable`] per morsel (buffers from the bounded
/// thread-local scratch pool), then merged by a final serial pass: each
/// morsel's representatives are folded into a global table **in morsel
/// order**, which reproduces the serial first-occurrence numbering
/// exactly — a value's global representative is its first row in the
/// first morsel that contains it, i.e. its globally first row. The
/// per-morsel gids are then relabeled through the local→global map and
/// concatenated in morsel order, so the output is bit-identical to the
/// serial single-table pass at every thread count.
pub(crate) fn hash_group_column(
    ctx: &ExecCtx,
    col: &Column,
    threads: usize,
) -> Result<(Vec<u32>, Vec<u32>, &'static str)> {
    let n = col.len();
    if crate::costmodel::group_prefers_spill(&ctx.mem, n) {
        // Out-of-core partition-then-process shape (see the function
        // docs): resource decision only, the numbering is identical.
        return spill_group_column(ctx, col);
    }
    if threads <= 1 {
        // Dictionary-encoded tails group by *code*: the dictionary is
        // duplicate-free, so code equality is value equality and a flat
        // code→gid table replaces hashing entirely. Gids are still
        // assigned at first appearance, so the output is bit-identical to
        // the hash path. Gated on the code domain staying proportionate to
        // the input (a huge dictionary over few rows would pay more for
        // the table fill than the hashes it saves). The parallel path
        // keeps the generic per-morsel tables — its merge pass needs
        // value-keyed tables anyway and morsel results must stay
        // label-compatible.
        if let crate::typed::TypedSlice::DictStr(d) = col.typed() {
            if d.dict_len() <= (4 * n).max(1 << 16) {
                let (gid_of, reps) = dict_group_codes(d);
                return Ok((gid_of, reps, "code-group"));
            }
        }
        return Ok(crate::for_each_typed!(col, |t| {
            let mut table = GroupTable::with_capacity(n);
            let mut gid_of: Vec<u32> = Vec::with_capacity(n);
            for i in 0..n {
                let v = t.value(i);
                let h = t.hash_one(v);
                let (g, _) =
                    table.find_or_insert(h, i as u32, |rep| t.eq_one(t.value(rep as usize), v));
                gid_of.push(g);
            }
            (gid_of, table.reps().to_vec(), "hash")
        }));
    }
    let c = col.clone();
    let parts: Vec<(Vec<u32>, Vec<u32>)> =
        crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
            crate::for_each_typed!(&c, |t| {
                let mut table = GroupTable::pooled(r.len());
                let mut lgids: Vec<u32> = Vec::with_capacity(r.len());
                for i in r {
                    let v = t.value(i);
                    let h = t.hash_one(v);
                    let (g, _) =
                        table.find_or_insert(h, i as u32, |rep| t.eq_one(t.value(rep as usize), v));
                    lgids.push(g);
                }
                let reps = table.reps().to_vec();
                table.recycle();
                (lgids, reps)
            })
        })?;
    Ok(crate::for_each_typed!(col, |t| {
        let est: usize = parts.iter().map(|p| p.1.len()).sum();
        let mut table = GroupTable::with_capacity(est);
        let mut maps: Vec<Vec<u32>> = Vec::with_capacity(parts.len());
        for (_, reps) in &parts {
            let mut map = Vec::with_capacity(reps.len());
            for &rep in reps {
                let v = t.value(rep as usize);
                let h = t.hash_one(v);
                let (g, _) = table.find_or_insert(h, rep, |rr| t.eq_one(t.value(rr as usize), v));
                map.push(g);
            }
            maps.push(map);
        }
        let mut gid_of: Vec<u32> = Vec::with_capacity(n);
        for ((lgids, _), map) in parts.iter().zip(&maps) {
            gid_of.extend(lgids.iter().map(|&lg| map[lg as usize]));
        }
        (gid_of, table.reps().to_vec(), "par-hash")
    }))
}

/// Out-of-core first-occurrence grouping: hash-cluster the rows into
/// per-cluster regions of a spill file ([`crate::spill::SpilledClusters`]),
/// group each cluster alone with a cluster-sized [`GroupTable`], then
/// renumber the per-cluster provisional gids globally. Only one cluster's
/// table is ever resident, so the transient working set is bounded by the
/// largest cluster.
///
/// The renumbering reproduces the serial first-occurrence numbering
/// exactly: all rows of a value hash to the same cluster, so groups are
/// disjoint across clusters and each provisional representative (the
/// first row of its value within the cluster, in ascending row order
/// preserved by the stable clustering) is the value's globally first
/// row. Sorting the representatives by row position therefore ranks the
/// groups in order of first appearance.
fn spill_group_column(ctx: &ExecCtx, col: &Column) -> Result<(Vec<u32>, Vec<u32>, &'static str)> {
    let n = col.len();
    let bits = crate::typed::radix_bits(n);
    let mut gid_of: Vec<u32> = vec![0; n];
    // Representative row per provisional (cluster-local, then offset)
    // group id, appended cluster by cluster.
    let mut prov_reps: Vec<u32> = Vec::new();
    let r: Result<()> = crate::for_each_typed!(col, |t| {
        let sc = crate::spill::SpilledClusters::build(ctx, t, bits)?;
        let mut buf: Vec<u64> = Vec::new();
        for c in 0..sc.num_clusters() {
            if sc.cluster_len(c) == 0 {
                continue;
            }
            sc.read_cluster(ctx, c, &mut buf)?;
            let base = prov_reps.len() as u32;
            let mut table = GroupTable::pooled(buf.len());
            for &p in &buf {
                let i = crate::typed::pair_pos(p) as usize;
                let v = t.value(i);
                let h = t.hash_one(v);
                let (g, _) =
                    table.find_or_insert(h, i as u32, |rep| t.eq_one(t.value(rep as usize), v));
                gid_of[i] = base + g;
            }
            prov_reps.extend_from_slice(table.reps());
            table.recycle();
        }
        Ok(())
    });
    r?;
    let mut order: Vec<u32> = (0..prov_reps.len() as u32).collect();
    order.sort_unstable_by_key(|&g| prov_reps[g as usize]);
    let mut new_gid: Vec<u32> = vec![0; order.len()];
    let mut reps: Vec<u32> = Vec::with_capacity(order.len());
    for (rank, &g) in order.iter().enumerate() {
        new_gid[g as usize] = rank as u32;
        reps.push(prov_reps[g as usize]);
    }
    for g in gid_of.iter_mut() {
        *g = new_gid[*g as usize];
    }
    Ok((gid_of, reps, "spill"))
}

/// First-occurrence grouping over dictionary codes with a flat code→gid
/// table (see the dispatch comment in [`hash_group_column`]). The slot
/// table comes from the bounded thread-local scratch pool; there is no
/// abort point between checkout and return.
fn dict_group_codes(d: crate::typed::DictStrVals<'_>) -> (Vec<u32>, Vec<u32>) {
    const EMPTY: u32 = u32::MAX;
    let codes = d.codes();
    let mut slot = crate::typed::take_u32(d.dict_len());
    slot.resize(d.dict_len(), EMPTY);
    let mut gid_of: Vec<u32> = Vec::with_capacity(codes.len());
    let mut reps: Vec<u32> = Vec::new();
    for i in 0..codes.len() {
        let s = &mut slot[codes.get(i) as usize];
        if *s == EMPTY {
            *s = reps.len() as u32;
            reps.push(i as u32);
        }
        gid_of.push(*s);
    }
    crate::typed::put_u32(slot);
    (gid_of, reps)
}

/// Unary group: one new oid per distinct tail value. Group oids are dense,
/// assigned in order of first appearance (or value order when the tail is
/// sorted). The result head *shares* the operand's head column, so it is
/// synced with the operand.
pub fn group1(ctx: &ExecCtx, ab: &Bat) -> Result<Bat> {
    ctx.probe("op/group")?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let sorted = ab.props().tail.sorted;
    let threads = if sorted { 1 } else { super::par_threads(ctx, ab.len()) };
    let (mut gids, ngroups, algo): (Vec<Oid>, usize, &'static str) = if sorted {
        crate::for_each_typed!(ab.tail(), |t| {
            let n = t.len();
            let mut gids: Vec<Oid> = Vec::with_capacity(n);
            // Merge grouping: adjacent comparison; ids ascend with values.
            let mut g: Oid = 0;
            for i in 0..n {
                if i > 0 && !t.eq_one(t.value(i), t.value(i - 1)) {
                    g += 1;
                }
                gids.push(g);
            }
            let ngroups = if n == 0 { 0 } else { g as usize + 1 };
            (gids, ngroups, "merge")
        })
    } else {
        let (gid_of, rep, algo) = hash_group_column(ctx, ab.tail(), threads)?;
        (gid_of.into_iter().map(|g| g as Oid).collect(), rep.len(), algo)
    };
    let base = ctx.fresh_oids(ngroups);
    for g in &mut gids {
        *g += base;
    }
    let result = Bat::with_props(
        ab.head().clone(),
        Column::from_oids(gids),
        Props::new(
            ab.props().head,
            ColProps { sorted, key: false, dense: false, ..ColProps::NONE },
        ),
    );
    ctx.record("group", algo, started, faults0, &result)?;
    Ok(result)
}

/// Binary (refining) group: `{a·o_bd | ab ∈ AB ∧ cd ∈ CD ∧ a = c ∧
/// o_bd = unique_oid(b, d)}`. `AB` is typically the group BAT of a previous
/// `group` and `CD` the next grouping attribute. The fast path requires the
/// operands to be synced; otherwise `CD` must have a key head and is
/// aligned by hash.
pub fn group2(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/group")?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
        pager::touch_scan(p, cd.tail());
    }
    // Align: position i of AB corresponds to position align[i] of CD.
    let (align, algo): (Vec<u32>, &'static str) = if ab.synced(cd) {
        ((0..ab.len() as u32).collect(), "sync")
    } else {
        let idx = crate::accel::hash::HashIndex::build(cd.head());
        let align: std::result::Result<Vec<u32>, usize> =
            crate::for_each_typed2!(ab.head(), cd.head(), |ah, ch| {
                'align: {
                    let mut align = Vec::with_capacity(ab.len());
                    for i in 0..ah.len() {
                        let v = ah.value(i);
                        let h = ah.hash_one(v);
                        match idx.candidates(h).find(|&p| ch.eq_one(ch.value(p), v)) {
                            Some(p) => align.push(p as u32),
                            None => break 'align Err(i),
                        }
                    }
                    Ok(align)
                }
            });
        match align {
            Ok(a) => (a, "hash-align"),
            Err(i) => {
                return Err(MonetError::Malformed {
                    op: "group",
                    detail: format!(
                        "binary group: head value at position {i} of the group \
                         BAT has no counterpart in the attribute BAT"
                    ),
                })
            }
        }
    };
    // Pair grouping over (b, d): nested typed dispatch monomorphizes the
    // loop for every tail-type combination.
    let (mut gids, ngroups): (Vec<Oid>, usize) = crate::for_each_typed!(ab.tail(), |bt| {
        crate::for_each_typed!(cd.tail(), |dt| {
            let n = bt.len();
            let mut table = GroupTable::with_capacity(n);
            let mut gids: Vec<Oid> = Vec::with_capacity(n);
            for i in 0..n {
                let j = align[i] as usize;
                let bv = bt.value(i);
                let dv = dt.value(j);
                let h = bt.hash_one(bv).rotate_left(23) ^ dt.hash_one(dv);
                let (g, _) = table.find_or_insert(h, i as u32, |rep| {
                    let k = rep as usize;
                    bt.eq_one(bt.value(k), bv) && dt.eq_one(dt.value(align[k] as usize), dv)
                });
                gids.push(g as Oid);
            }
            let ngroups = table.len();
            (gids, ngroups)
        })
    });
    let base = ctx.fresh_oids(ngroups);
    for g in &mut gids {
        *g += base;
    }
    let result = Bat::with_props(
        ab.head().clone(),
        Column::from_oids(gids),
        Props::new(ab.props().head, ColProps::NONE),
    );
    ctx.record("group", algo, started, faults0, &result)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_group_assigns_one_oid_per_value() {
        let ctx = ExecCtx::new();
        let years = Bat::new(
            Column::from_oids(vec![1, 2, 3, 4, 5]),
            Column::from_ints(vec![1995, 1996, 1995, 1997, 1996]),
        );
        let class = group1(&ctx, &years).unwrap();
        assert_eq!(class.len(), 5);
        assert!(class.synced(&years));
        let g = class.tail();
        assert_eq!(g.oid_at(0), g.oid_at(2)); // both 1995
        assert_eq!(g.oid_at(1), g.oid_at(4)); // both 1996
        assert_ne!(g.oid_at(0), g.oid_at(1));
        assert_ne!(g.oid_at(3), g.oid_at(0));
        // dense fresh oids: 3 distinct
        let mut distinct: Vec<Oid> = (0..5).map(|i| g.oid_at(i)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
        assert_eq!(distinct[2] - distinct[0], 2);
    }

    #[test]
    fn merge_group_on_sorted_tail() {
        let ctx = ExecCtx::new().with_trace();
        let b = Bat::with_props(
            Column::from_oids(vec![9, 8, 7]),
            Column::from_ints(vec![1, 1, 2]),
            Props::new(ColProps::NONE, ColProps::SORTED),
        );
        let r = group1(&ctx, &b).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "merge");
        assert!(r.props().tail.sorted);
        assert_eq!(r.tail().oid_at(0), r.tail().oid_at(1));
        assert_eq!(r.tail().oid_at(2), r.tail().oid_at(0) + 1);
    }

    #[test]
    fn binary_group_refines_synced() {
        let ctx = ExecCtx::new();
        // group by (flag, status): Q1-style two-attribute grouping
        let head = Column::from_oids(vec![1, 2, 3, 4]);
        let flag = Bat::new(head.clone(), Column::from_chrs(vec![b'A', b'A', b'R', b'A']));
        let status = Bat::new(head, Column::from_chrs(vec![b'F', b'O', b'F', b'F']));
        let g1 = group1(&ctx, &flag).unwrap();
        let g2 = group2(&ctx, &g1, &status).unwrap();
        let g = g2.tail();
        // (A,F) at 0 and 3; (A,O) at 1; (R,F) at 2
        assert_eq!(g.oid_at(0), g.oid_at(3));
        assert_ne!(g.oid_at(0), g.oid_at(1));
        assert_ne!(g.oid_at(0), g.oid_at(2));
        assert_ne!(g.oid_at(1), g.oid_at(2));
    }

    #[test]
    fn binary_group_hash_align() {
        let ctx = ExecCtx::new();
        let g1 = Bat::new(Column::from_oids(vec![4, 2, 3]), Column::from_oids(vec![100, 100, 101]));
        let attr = Bat::new(Column::from_oids(vec![2, 3, 4]), Column::from_ints(vec![7, 7, 8]));
        let r = group2(&ctx, &g1, &attr).unwrap();
        let g = r.tail();
        // rows: (100,8)@4, (100,7)@2, (101,7)@3 => all distinct
        assert_ne!(g.oid_at(0), g.oid_at(1));
        assert_ne!(g.oid_at(1), g.oid_at(2));
    }

    #[test]
    fn binary_group_missing_head_errors() {
        let ctx = ExecCtx::new();
        let g1 = Bat::new(Column::from_oids(vec![1]), Column::from_oids(vec![100]));
        let attr = Bat::new(Column::from_oids(vec![2]), Column::from_ints(vec![7]));
        assert!(group2(&ctx, &g1, &attr).is_err());
    }

    #[test]
    fn group_on_strings() {
        let ctx = ExecCtx::new();
        let b = Bat::new(
            Column::from_oids(vec![1, 2, 3]),
            Column::from_strs(["EUROPE", "ASIA", "EUROPE"]),
        );
        let r = group1(&ctx, &b).unwrap();
        assert_eq!(r.tail().oid_at(0), r.tail().oid_at(2));
        assert_ne!(r.tail().oid_at(0), r.tail().oid_at(1));
    }

    #[test]
    fn spill_grouping_matches_in_memory_numbering() {
        let ctx = ExecCtx::new();
        // Values spread across many clusters with skewed repetition; also
        // an encoded (dict) string column, which in-memory grouping sends
        // through the code-group fast path.
        let ints = Column::from_ints((0..5000).map(|i| ((i * 31) % 613) as i32).collect());
        let strs = Column::from_strs((0..3000).map(|i| format!("g{}", i % 97)).collect::<Vec<_>>());
        let dict = strs.encode(false);
        assert_eq!(dict.encoding(), crate::props::Enc::Dict);
        for col in [&ints, &strs, &dict] {
            let (gid_mem, reps_mem, _) = hash_group_column(&ctx, col, 1).unwrap();
            let (gid_sp, reps_sp, algo) = spill_group_column(&ctx, col).unwrap();
            assert_eq!(algo, "spill");
            assert_eq!(gid_mem, gid_sp, "gids diverge on {}", col.atom_type());
            assert_eq!(reps_mem, reps_sp, "reps diverge on {}", col.atom_type());
        }
        // Empty input.
        let (gid, reps, _) = spill_group_column(&ctx, &Column::from_ints(vec![])).unwrap();
        assert!(gid.is_empty() && reps.is_empty());
    }

    #[test]
    fn group_dispatches_to_spill_under_budget_pressure() {
        let ctx = ExecCtx::new().with_trace();
        let b = Bat::new(
            Column::from_oids((0..4000).collect()),
            Column::from_ints((0..4000).map(|i| (i % 800) as i32).collect()),
        );
        let a = group1(&ctx, &b).unwrap();
        assert_ne!(ctx.take_trace()[0].algo, "spill");
        // Budget below the GroupTable estimate but above the result
        // charge (the gid column is the output either way).
        ctx.mem.begin();
        ctx.mem.set_budget(Some(crate::costmodel::group_inmem_bytes(b.len()) - 1));
        let s = group1(&ctx, &b).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "spill");
        // Same grouping structure: gids are fresh oids per call, so
        // compare the induced partition, not the raw oids.
        let rel = |g: &Bat, i: usize| g.tail().oid_at(i) - g.tail().oid_at(0);
        for i in 0..b.len() {
            assert_eq!(rel(&a, i), rel(&s, i), "partition diverges at {i}");
        }
    }

    #[test]
    fn empty_group() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![]), Column::from_ints(vec![]));
        assert_eq!(group1(&ctx, &b).unwrap().len(), 0);
    }
}
