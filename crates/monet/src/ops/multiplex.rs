//! The multiplex constructor `[f]` (Figure 4): bulk application of any
//! scalar operation on all tail values of a BAT.
//!
//! `[f](AB, …, XY) = {a·f(b,…,y) | ab ∈ AB, …, xy ∈ XY ∧ a = … = x}` —
//! multiple BAT parameters combine over the natural join on head values.
//! This vectorizes expression computation and method invocation: the
//! `(1-discount)*extendedprice` of Q13 becomes successive `[-]` and `[*]`
//! multiplexes (Figure 5). Constant arguments broadcast, as in
//! `[-](1.0, discount)`.
//!
//! When all BAT arguments are synced the kernel uses the positional fast
//! path ("the two multiplex operations can be executed very efficiently,
//! since the kernel knows that the BATs are synced" — Section 6.2.1). The
//! synced numeric/date/bool/string shapes used by the TPC-D plans (Q1-Q15)
//! run as monomorphized slice loops — e.g. both halves of the
//! `(1-discount)*extendedprice` revenue expression compile to straight-line
//! `f64` kernels; only mixed or unsynced argument shapes fall back to the
//! generic row-at-a-time `AtomValue` path.

use std::time::Instant;

use crate::atom::{AtomType, AtomValue};
use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::{MonetError, Result};
use crate::pager;
use crate::props::{ColProps, Props};

/// A scalar function liftable over BATs with `[f]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Add,
    Sub,
    Mul,
    Div,
    /// Extract the calendar year of a date.
    Year,
    /// Extract the month (1-12) of a date.
    Month,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    /// `starts_with(string, prefix)`.
    StrPrefix,
    /// `contains(string, needle)`.
    StrContains,
    /// Arithmetic negation.
    Neg,
}

impl ScalarFunc {
    /// MIL spelling, for pretty-printing programs (`[*]`, `[year]`, ...).
    pub fn mil_name(self) -> &'static str {
        match self {
            ScalarFunc::Add => "+",
            ScalarFunc::Sub => "-",
            ScalarFunc::Mul => "*",
            ScalarFunc::Div => "/",
            ScalarFunc::Year => "year",
            ScalarFunc::Month => "month",
            ScalarFunc::Eq => "=",
            ScalarFunc::Ne => "!=",
            ScalarFunc::Lt => "<",
            ScalarFunc::Le => "<=",
            ScalarFunc::Gt => ">",
            ScalarFunc::Ge => ">=",
            ScalarFunc::And => "and",
            ScalarFunc::Or => "or",
            ScalarFunc::Not => "not",
            ScalarFunc::StrPrefix => "str_prefix",
            ScalarFunc::StrContains => "str_contains",
            ScalarFunc::Neg => "neg",
        }
    }

    /// Number of arguments this function expects.
    pub fn arity(self) -> usize {
        match self {
            ScalarFunc::Not | ScalarFunc::Neg | ScalarFunc::Year | ScalarFunc::Month => 1,
            _ => 2,
        }
    }
}

/// One argument of a multiplex: a BAT (per-object values) or a broadcast
/// constant.
#[derive(Debug, Clone)]
pub enum MultArg {
    Bat(Bat),
    Const(AtomValue),
}

/// Apply a scalar function to concrete values — the single-value semantics
/// that `[f]` lifts. Also used by the MOA reference evaluator, so the
/// commutativity check of Figure 6 exercises one shared definition.
pub fn apply_scalar(f: ScalarFunc, args: &[AtomValue]) -> Result<AtomValue> {
    use AtomValue as V;
    if args.len() != f.arity() {
        return Err(MonetError::Malformed {
            op: "multiplex",
            detail: format!("{} expects {} args, got {}", f.mil_name(), f.arity(), args.len()),
        });
    }
    let numeric_pair = |a: &V, b: &V| -> Option<(f64, f64)> { Some((a.as_f64()?, b.as_f64()?)) };
    match f {
        ScalarFunc::Add | ScalarFunc::Sub | ScalarFunc::Mul | ScalarFunc::Div => {
            let (a, b) = (&args[0], &args[1]);
            match (a, b) {
                (V::Int(x), V::Int(y)) => Ok(match f {
                    ScalarFunc::Add => V::Int(x.wrapping_add(*y)),
                    ScalarFunc::Sub => V::Int(x.wrapping_sub(*y)),
                    ScalarFunc::Mul => V::Int(x.wrapping_mul(*y)),
                    ScalarFunc::Div => {
                        if *y == 0 {
                            return Err(MonetError::Arithmetic("division by zero"));
                        }
                        V::Int(x.wrapping_div(*y))
                    }
                    _ => unreachable!(),
                }),
                (V::Lng(x), V::Lng(y)) => Ok(match f {
                    ScalarFunc::Add => V::Lng(x.wrapping_add(*y)),
                    ScalarFunc::Sub => V::Lng(x.wrapping_sub(*y)),
                    ScalarFunc::Mul => V::Lng(x.wrapping_mul(*y)),
                    ScalarFunc::Div => {
                        if *y == 0 {
                            return Err(MonetError::Arithmetic("division by zero"));
                        }
                        V::Lng(x.wrapping_div(*y))
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let (x, y) = numeric_pair(a, b)
                        .ok_or(MonetError::Unsupported { op: "arith", ty: a.atom_type() })?;
                    Ok(V::Dbl(match f {
                        ScalarFunc::Add => x + y,
                        ScalarFunc::Sub => x - y,
                        ScalarFunc::Mul => x * y,
                        ScalarFunc::Div => x / y,
                        _ => unreachable!(),
                    }))
                }
            }
        }
        ScalarFunc::Neg => match &args[0] {
            V::Int(x) => Ok(V::Int(-x)),
            V::Lng(x) => Ok(V::Lng(-x)),
            V::Dbl(x) => Ok(V::Dbl(-x)),
            other => Err(MonetError::Unsupported { op: "neg", ty: other.atom_type() }),
        },
        ScalarFunc::Year => match &args[0] {
            V::Date(d) => Ok(V::Int(d.year())),
            other => Err(MonetError::Unsupported { op: "year", ty: other.atom_type() }),
        },
        ScalarFunc::Month => match &args[0] {
            V::Date(d) => Ok(V::Int(d.month() as i32)),
            other => Err(MonetError::Unsupported { op: "month", ty: other.atom_type() }),
        },
        ScalarFunc::Eq
        | ScalarFunc::Ne
        | ScalarFunc::Lt
        | ScalarFunc::Le
        | ScalarFunc::Gt
        | ScalarFunc::Ge => {
            let (a, b) = (&args[0], &args[1]);
            let ord = if a.atom_type() == b.atom_type() {
                a.cmp_same_type(b)
            } else if let Some((x, y)) = numeric_pair(a, b) {
                x.total_cmp(&y)
            } else {
                return Err(MonetError::IncompatibleColumns {
                    op: "compare",
                    left: a.atom_type(),
                    right: b.atom_type(),
                });
            };
            Ok(V::Bool(match f {
                ScalarFunc::Eq => ord.is_eq(),
                ScalarFunc::Ne => !ord.is_eq(),
                ScalarFunc::Lt => ord.is_lt(),
                ScalarFunc::Le => ord.is_le(),
                ScalarFunc::Gt => ord.is_gt(),
                ScalarFunc::Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        ScalarFunc::And | ScalarFunc::Or => match (&args[0], &args[1]) {
            (V::Bool(x), V::Bool(y)) => {
                Ok(V::Bool(if f == ScalarFunc::And { *x && *y } else { *x || *y }))
            }
            (a, _) => Err(MonetError::Unsupported { op: "bool", ty: a.atom_type() }),
        },
        ScalarFunc::Not => match &args[0] {
            V::Bool(x) => Ok(V::Bool(!x)),
            other => Err(MonetError::Unsupported { op: "not", ty: other.atom_type() }),
        },
        ScalarFunc::StrPrefix | ScalarFunc::StrContains => match (&args[0], &args[1]) {
            (V::Str(s), V::Str(p)) => Ok(V::Bool(if f == ScalarFunc::StrPrefix {
                s.starts_with(&**p)
            } else {
                s.contains(&**p)
            })),
            (a, _) => Err(MonetError::Unsupported { op: "str", ty: a.atom_type() }),
        },
    }
}

/// The multiplex operator `[f](arg, ...)`.
pub fn multiplex(ctx: &ExecCtx, f: ScalarFunc, args: &[MultArg]) -> Result<Bat> {
    ctx.probe("op/multiplex")?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    let bats: Vec<&Bat> = args
        .iter()
        .filter_map(|a| match a {
            MultArg::Bat(b) => Some(b),
            MultArg::Const(_) => None,
        })
        .collect();
    if bats.is_empty() {
        return Err(MonetError::Malformed {
            op: "multiplex",
            detail: "at least one BAT argument required".into(),
        });
    }
    if let Some(p) = ctx.pager.as_deref() {
        for b in &bats {
            pager::touch_scan(p, b.tail());
        }
    }
    let first = bats[0];
    let all_synced = bats.iter().all(|b| first.synced(b));
    let (result, algo) = if all_synced {
        (mux_synced(ctx, f, first, args)?, "sync")
    } else {
        (mux_aligned(ctx, f, first, args)?, "hash-align")
    };
    ctx.record("multiplex", algo, started, faults0, &result)?;
    Ok(result)
}

/// One synced multiplex argument reduced to what the typed fast path
/// needs: the tail column (owned, cheaply `Arc`-cloned) or a broadcast
/// constant. Owning the columns lets the morsel executor hand each worker
/// a zero-copy slice of every argument. `pub(crate)` so the fused-pipeline
/// executor ([`crate::mil`]) can feed per-morsel windows through the same
/// kernels.
#[derive(Clone)]
pub(crate) enum TailArg {
    Col(Column),
    Const(AtomValue),
}

impl TailArg {
    fn of(args: &[MultArg]) -> Vec<TailArg> {
        args.iter()
            .map(|a| match a {
                MultArg::Bat(b) => TailArg::Col(b.tail().clone()),
                MultArg::Const(v) => TailArg::Const(v.clone()),
            })
            .collect()
    }

    /// The `[start, start+len)` window of the argument (constants
    /// broadcast into any window).
    fn window(&self, start: usize, len: usize) -> TailArg {
        match self {
            TailArg::Col(c) => TailArg::Col(c.slice(start, len)),
            TailArg::Const(v) => TailArg::Const(v.clone()),
        }
    }
}

/// Positional fast path: all BAT args share the first BAT's head.
fn mux_synced(ctx: &ExecCtx, f: ScalarFunc, first: &Bat, args: &[MultArg]) -> Result<Bat> {
    let n = first.len();
    let tails = TailArg::of(args);
    let threads = super::par_threads(ctx, n);
    // The fast-path shapes are decided by argument *types*, so probing a
    // zero-row window tells us whether every morsel will take the same
    // monomorphized loop — the precondition for cutting the operand.
    if threads > 1 && typed_fast_path(f, &windowed(&tails, 0..0), 0)?.is_some() {
        let tails2 = tails.clone();
        let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
            typed_fast_path(f, &windowed(&tails2, r.clone()), r.len())
                .map(|col| col.expect("uniform fast-path shape across morsels"))
        })?;
        // Surface the first error in morsel order (matching the serial
        // scan, which stops at the earliest failing row's morsel).
        let cols = parts.into_iter().collect::<Result<Vec<Column>>>()?;
        return Ok(Bat::with_props(
            first.head().clone(),
            Column::concat_all(&cols),
            Props::new(first.props().head, ColProps::NONE),
        ));
    }
    if let Some(col) = typed_fast_path(f, &tails, n)? {
        return Ok(Bat::with_props(
            first.head().clone(),
            col,
            Props::new(first.props().head, ColProps::NONE),
        ));
    }
    let mut out: Vec<AtomValue> = Vec::with_capacity(n);
    let mut scratch: Vec<AtomValue> = Vec::with_capacity(args.len());
    for i in 0..n {
        scratch.clear();
        for a in args {
            scratch.push(match a {
                MultArg::Bat(b) => b.tail().get(i),
                MultArg::Const(v) => v.clone(),
            });
        }
        out.push(apply_scalar(f, &scratch)?);
    }
    let ty = out.first().map(AtomValue::atom_type).unwrap_or(result_type_hint(f, args));
    Ok(Bat::with_props(
        first.head().clone(),
        Column::from_atoms(ty, out),
        Props::new(first.props().head, ColProps::NONE),
    ))
}

/// General path: natural join on heads. Every non-driver BAT must have a
/// key head; driver BUNs with no counterpart in some argument are dropped
/// (inner-join semantics).
fn mux_aligned(_ctx: &ExecCtx, f: ScalarFunc, first: &Bat, args: &[MultArg]) -> Result<Bat> {
    // Build a lookup per non-first BAT argument.
    struct Aligned {
        index: crate::accel::hash::HashIndex,
    }
    let mut lookups: Vec<Option<Aligned>> = Vec::with_capacity(args.len());
    for a in args {
        match a {
            MultArg::Bat(b) if !first.synced(b) => lookups
                .push(Some(Aligned { index: crate::accel::hash::HashIndex::build(b.head()) })),
            _ => lookups.push(None),
        }
    }
    let mut keep: Vec<u32> = Vec::with_capacity(first.len());
    let mut out: Vec<AtomValue> = Vec::with_capacity(first.len());
    let mut scratch: Vec<AtomValue> = Vec::with_capacity(args.len());
    let fh = first.head();
    'row: for i in 0..first.len() {
        scratch.clear();
        for (a, l) in args.iter().zip(&lookups) {
            match (a, l) {
                (MultArg::Const(v), _) => scratch.push(v.clone()),
                (MultArg::Bat(b), None) => scratch.push(b.tail().get(i)),
                (MultArg::Bat(b), Some(al)) => {
                    let h = fh.hash_at(i);
                    match al.index.candidates(h).find(|&p| b.head().eq_at(p, fh, i)) {
                        Some(p) => scratch.push(b.tail().get(p)),
                        None => continue 'row,
                    }
                }
            }
        }
        keep.push(i as u32);
        out.push(apply_scalar(f, &scratch)?);
    }
    let ty = out.first().map(AtomValue::atom_type).unwrap_or(result_type_hint(f, args));
    let head = fh.gather(&keep);
    let p = first.props();
    Ok(Bat::with_props(
        head,
        Column::from_atoms(ty, out),
        Props::new(
            ColProps { sorted: p.head.sorted, key: p.head.key, dense: false, ..ColProps::NONE },
            ColProps::NONE,
        ),
    ))
}

/// Result type when the output is empty (so empty BATs still carry a
/// sensible column type).
pub(crate) fn result_type_hint(f: ScalarFunc, args: &[MultArg]) -> AtomType {
    match f {
        ScalarFunc::Eq
        | ScalarFunc::Ne
        | ScalarFunc::Lt
        | ScalarFunc::Le
        | ScalarFunc::Gt
        | ScalarFunc::Ge
        | ScalarFunc::And
        | ScalarFunc::Or
        | ScalarFunc::Not
        | ScalarFunc::StrPrefix
        | ScalarFunc::StrContains => AtomType::Bool,
        ScalarFunc::Year | ScalarFunc::Month => AtomType::Int,
        _ => args
            .iter()
            .find_map(|a| match a {
                MultArg::Bat(b) => Some(b.tail().atom_type()),
                MultArg::Const(v) => Some(v.atom_type()),
            })
            .unwrap_or(AtomType::Dbl),
    }
}

/// Evaluate one multiplex window directly to its tail column: the typed
/// fast path when the shape qualifies, otherwise the generic row-at-a-time
/// loop. This is the per-morsel map kernel of the fused-pipeline executor
/// — the same code paths `mux_synced` takes, so fused and staged execution
/// produce the same bits.
pub(crate) fn eval_tail_window(f: ScalarFunc, args: &[TailArg], n: usize) -> Result<Column> {
    if let Some(col) = typed_fast_path(f, args, n)? {
        return Ok(col);
    }
    let mut out: Vec<AtomValue> = Vec::with_capacity(n);
    let mut scratch: Vec<AtomValue> = Vec::with_capacity(args.len());
    for i in 0..n {
        scratch.clear();
        for a in args {
            scratch.push(match a {
                TailArg::Col(c) => c.get(i),
                TailArg::Const(v) => v.clone(),
            });
        }
        out.push(apply_scalar(f, &scratch)?);
    }
    let ty = out.first().map(AtomValue::atom_type).unwrap_or_else(|| tail_type_hint(f, args));
    Ok(Column::from_atoms(ty, out))
}

/// [`result_type_hint`], over window arguments.
fn tail_type_hint(f: ScalarFunc, args: &[TailArg]) -> AtomType {
    match f {
        ScalarFunc::Eq
        | ScalarFunc::Ne
        | ScalarFunc::Lt
        | ScalarFunc::Le
        | ScalarFunc::Gt
        | ScalarFunc::Ge
        | ScalarFunc::And
        | ScalarFunc::Or
        | ScalarFunc::Not
        | ScalarFunc::StrPrefix
        | ScalarFunc::StrContains => AtomType::Bool,
        ScalarFunc::Year | ScalarFunc::Month => AtomType::Int,
        _ => args
            .iter()
            .find_map(|a| match a {
                TailArg::Col(c) => Some(c.atom_type()),
                TailArg::Const(v) => Some(v.atom_type()),
            })
            .unwrap_or(AtomType::Dbl),
    }
}

/// One side of a specialized binary loop: a typed slice or a broadcast
/// constant. The `Src` trait monomorphizes the loop for every shape — no
/// per-row branch on slice-vs-const.
trait Src<T: Copy>: Copy {
    fn at(&self, i: usize) -> T;
}

impl<'a, T: Copy> Src<T> for &'a [T] {
    #[inline(always)]
    fn at(&self, i: usize) -> T {
        self[i]
    }
}

impl<'a> Src<&'a str> for crate::typed::StrVals<'a> {
    #[inline(always)]
    fn at(&self, i: usize) -> &'a str {
        use crate::typed::TypedVals;
        self.value(i)
    }
}

/// Broadcast constant source.
#[derive(Clone, Copy)]
struct Cst<T: Copy>(T);

impl<T: Copy> Src<T> for Cst<T> {
    #[inline(always)]
    fn at(&self, _i: usize) -> T {
        self.0
    }
}

#[inline]
fn map2<T: Copy, R, A: Src<T>, B: Src<T>>(n: usize, a: A, b: B, f: impl Fn(T, T) -> R) -> Vec<R> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f(a.at(i), b.at(i)));
    }
    out
}

/// Slice-or-constant view of one multiplex argument.
enum SC<'a, T: Copy> {
    S(&'a [T]),
    C(T),
}

/// Instantiate `$e` for the four slice/const shape combinations of a binary
/// argument pair — each arm binds monomorphic [`Src`] values.
macro_rules! with_src2 {
    ($a:expr, $b:expr, |$x:ident, $y:ident| $e:expr) => {
        match ($a, $b) {
            (SC::S($x), SC::S($y)) => $e,
            (SC::S($x), SC::C(c)) => {
                let $y = Cst(c);
                $e
            }
            (SC::C(c), SC::S($y)) => {
                let $x = Cst(c);
                $e
            }
            (SC::C(ca), SC::C(cb)) => {
                let $x = Cst(ca);
                let $y = Cst(cb);
                $e
            }
        }
    };
}

/// The `[start, start+len)` windows of every argument, constants riding
/// along — the per-morsel argument vector of the parallel fast path.
fn windowed(tails: &[TailArg], r: std::ops::Range<usize>) -> Vec<TailArg> {
    tails.iter().map(|a| a.window(r.start, r.len())).collect()
}

fn int_sc(a: &TailArg) -> Option<SC<'_, i32>> {
    match a {
        TailArg::Col(c) => c.as_int_slice().map(SC::S),
        TailArg::Const(AtomValue::Int(v)) => Some(SC::C(*v)),
        _ => None,
    }
}

fn lng_sc(a: &TailArg) -> Option<SC<'_, i64>> {
    match a {
        TailArg::Col(c) => c.as_lng_slice().map(SC::S),
        TailArg::Const(AtomValue::Lng(v)) => Some(SC::C(*v)),
        _ => None,
    }
}

fn dbl_sc(a: &TailArg) -> Option<SC<'_, f64>> {
    match a {
        TailArg::Col(c) => c.as_dbl_slice().map(SC::S),
        TailArg::Const(AtomValue::Dbl(v)) => Some(SC::C(*v)),
        _ => None,
    }
}

fn date_sc(a: &TailArg) -> Option<SC<'_, i32>> {
    match a {
        TailArg::Col(c) => c.as_date_slice().map(SC::S),
        TailArg::Const(AtomValue::Date(d)) => Some(SC::C(d.0)),
        _ => None,
    }
}

fn chr_sc(a: &TailArg) -> Option<SC<'_, u8>> {
    match a {
        TailArg::Col(c) => c.as_chr_slice().map(SC::S),
        TailArg::Const(AtomValue::Chr(c)) => Some(SC::C(*c)),
        _ => None,
    }
}

fn bool_sc(a: &TailArg) -> Option<SC<'_, bool>> {
    match a {
        TailArg::Col(c) => c.as_bool_slice().map(SC::S),
        TailArg::Const(AtomValue::Bool(v)) => Some(SC::C(*v)),
        _ => None,
    }
}

/// Boolean column from a monomorphic comparison loop.
fn cmp_col<T: Copy, A: Src<T>, B: Src<T>>(
    f: ScalarFunc,
    n: usize,
    a: A,
    b: B,
    cmp: impl Fn(T, T) -> std::cmp::Ordering,
) -> Column {
    use ScalarFunc as F;
    Column::from_bools(match f {
        F::Eq => map2(n, a, b, |x, y| cmp(x, y).is_eq()),
        F::Ne => map2(n, a, b, |x, y| !cmp(x, y).is_eq()),
        F::Lt => map2(n, a, b, |x, y| cmp(x, y).is_lt()),
        F::Le => map2(n, a, b, |x, y| cmp(x, y).is_le()),
        F::Gt => map2(n, a, b, |x, y| cmp(x, y).is_gt()),
        F::Ge => map2(n, a, b, |x, y| cmp(x, y).is_ge()),
        _ => unreachable!(),
    })
}

/// Monomorphized loops for the synced argument shapes the TPC-D plans use:
/// same-type numeric arithmetic, same-type comparisons (int/lng/dbl/date/
/// chr/bool, plus string vs constant), boolean connectives, `not`/`neg`,
/// `year`/`month`, and constant-pattern string predicates. Returns
/// `Ok(None)` for every other shape — the generic row-wise path handles
/// those. Whether a shape qualifies depends only on the argument *types*,
/// so the decision is identical for the full operand and for every morsel
/// window of it — which is what lets the parallel path probe once on a
/// zero-row window.
fn typed_fast_path(f: ScalarFunc, args: &[TailArg], n: usize) -> Result<Option<Column>> {
    use crate::typed::TypedSlice;
    use ScalarFunc as F;
    // FOR/RLE-encoded numeric arguments decode once up front (an `Arc` bump
    // after the first call — the decode is cached inside the column data)
    // so the slice fast paths below still qualify. Dictionary-encoded
    // strings keep their codes: the string predicates evaluate on the
    // dictionary directly. A window's encoding equals the full column's,
    // so this normalization — like every other shape decision here — is
    // identical for the operand and for every morsel window of it.
    let needs_decode = |a: &TailArg| {
        matches!(a, TailArg::Col(c)
            if c.encoding() != crate::props::Enc::None && c.atom_type() != AtomType::Str)
    };
    let decoded: Vec<TailArg>;
    let args: &[TailArg] = if args.iter().any(needs_decode) {
        decoded = args
            .iter()
            .map(|a| match a {
                TailArg::Col(c) if needs_decode(a) => TailArg::Col(c.decoded()),
                other => other.clone(),
            })
            .collect();
        &decoded
    } else {
        args
    };
    match f {
        F::Add | F::Sub | F::Mul | F::Div => {
            if args.len() != 2 {
                return Ok(None);
            }
            if let (Some(a), Some(b)) = (int_sc(&args[0]), int_sc(&args[1])) {
                return with_src2!(a, b, |x, y| {
                    Ok(Some(Column::from_ints(match f {
                        F::Add => map2(n, x, y, |p, q| p.wrapping_add(q)),
                        F::Sub => map2(n, x, y, |p, q| p.wrapping_sub(q)),
                        F::Mul => map2(n, x, y, |p, q| p.wrapping_mul(q)),
                        F::Div => {
                            let mut out = Vec::with_capacity(n);
                            for i in 0..n {
                                let q = y.at(i);
                                if q == 0 {
                                    return Err(MonetError::Arithmetic("division by zero"));
                                }
                                out.push(x.at(i).wrapping_div(q));
                            }
                            out
                        }
                        _ => unreachable!(),
                    })))
                });
            }
            if let (Some(a), Some(b)) = (lng_sc(&args[0]), lng_sc(&args[1])) {
                return with_src2!(a, b, |x, y| {
                    Ok(Some(Column::from_lngs(match f {
                        F::Add => map2(n, x, y, |p, q| p.wrapping_add(q)),
                        F::Sub => map2(n, x, y, |p, q| p.wrapping_sub(q)),
                        F::Mul => map2(n, x, y, |p, q| p.wrapping_mul(q)),
                        F::Div => {
                            let mut out = Vec::with_capacity(n);
                            for i in 0..n {
                                let q = y.at(i);
                                if q == 0 {
                                    return Err(MonetError::Arithmetic("division by zero"));
                                }
                                out.push(x.at(i).wrapping_div(q));
                            }
                            out
                        }
                        _ => unreachable!(),
                    })))
                });
            }
            if let (Some(a), Some(b)) = (dbl_sc(&args[0]), dbl_sc(&args[1])) {
                return with_src2!(a, b, |x, y| {
                    Ok(Some(Column::from_dbls(match f {
                        F::Add => map2(n, x, y, |p, q| p + q),
                        F::Sub => map2(n, x, y, |p, q| p - q),
                        F::Mul => map2(n, x, y, |p, q| p * q),
                        F::Div => map2(n, x, y, |p, q| p / q),
                        _ => unreachable!(),
                    })))
                });
            }
            Ok(None)
        }
        F::Eq | F::Ne | F::Lt | F::Le | F::Gt | F::Ge => {
            if args.len() != 2 {
                return Ok(None);
            }
            if let (Some(a), Some(b)) = (int_sc(&args[0]), int_sc(&args[1])) {
                return Ok(Some(with_src2!(a, b, |x, y| cmp_col(f, n, x, y, |p, q| p.cmp(&q)))));
            }
            if let (Some(a), Some(b)) = (lng_sc(&args[0]), lng_sc(&args[1])) {
                return Ok(Some(with_src2!(a, b, |x, y| cmp_col(f, n, x, y, |p, q| p.cmp(&q)))));
            }
            if let (Some(a), Some(b)) = (dbl_sc(&args[0]), dbl_sc(&args[1])) {
                return Ok(Some(with_src2!(a, b, |x, y| cmp_col(f, n, x, y, |p, q| {
                    p.total_cmp(&q)
                }))));
            }
            if let (Some(a), Some(b)) = (date_sc(&args[0]), date_sc(&args[1])) {
                return Ok(Some(with_src2!(a, b, |x, y| cmp_col(f, n, x, y, |p, q| p.cmp(&q)))));
            }
            if let (Some(a), Some(b)) = (chr_sc(&args[0]), chr_sc(&args[1])) {
                return Ok(Some(with_src2!(a, b, |x, y| cmp_col(f, n, x, y, |p, q| p.cmp(&q)))));
            }
            if let (Some(a), Some(b)) = (bool_sc(&args[0]), bool_sc(&args[1])) {
                return Ok(Some(with_src2!(a, b, |x, y| cmp_col(f, n, x, y, |p, q| p.cmp(&q)))));
            }
            // String column versus constant (either side).
            if let (TailArg::Col(b), TailArg::Const(AtomValue::Str(c))) = (&args[0], &args[1]) {
                if let TypedSlice::Str(sv) = b.typed() {
                    return Ok(Some(cmp_col(f, n, sv, Cst(&**c), |p, q| p.cmp(q))));
                }
            }
            if let (TailArg::Const(AtomValue::Str(c)), TailArg::Col(b)) = (&args[0], &args[1]) {
                if let TypedSlice::Str(sv) = b.typed() {
                    return Ok(Some(cmp_col(f, n, Cst(&**c), sv, |p, q| p.cmp(q))));
                }
            }
            Ok(None)
        }
        F::And | F::Or => {
            if args.len() != 2 {
                return Ok(None);
            }
            if let (Some(a), Some(b)) = (bool_sc(&args[0]), bool_sc(&args[1])) {
                return with_src2!(a, b, |x, y| {
                    Ok(Some(Column::from_bools(if f == F::And {
                        map2(n, x, y, |p, q| p && q)
                    } else {
                        map2(n, x, y, |p, q| p || q)
                    })))
                });
            }
            Ok(None)
        }
        // Unary functions: over-supplied arguments must fall through to the
        // generic path, which rejects them with the arity error.
        F::Not if args.len() == 1 => match bool_sc(&args[0]) {
            Some(SC::S(v)) => Ok(Some(Column::from_bools(v.iter().map(|&b| !b).collect()))),
            _ => Ok(None),
        },
        F::Not => Ok(None),
        F::Neg if args.len() == 1 => match &args[0] {
            TailArg::Col(b) => {
                if let Some(v) = b.as_int_slice() {
                    Ok(Some(Column::from_ints(v.iter().map(|&x| -x).collect())))
                } else if let Some(v) = b.as_lng_slice() {
                    Ok(Some(Column::from_lngs(v.iter().map(|&x| -x).collect())))
                } else if let Some(v) = b.as_dbl_slice() {
                    Ok(Some(Column::from_dbls(v.iter().map(|&x| -x).collect())))
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        },
        F::Neg => Ok(None),
        F::Year | F::Month if args.len() == 1 => match &args[0] {
            TailArg::Col(b) => match b.as_date_slice() {
                Some(v) if f == F::Year => Ok(Some(Column::from_ints(
                    v.iter().map(|&d| crate::atom::Date(d).year()).collect(),
                ))),
                Some(v) => Ok(Some(Column::from_ints(
                    v.iter().map(|&d| crate::atom::Date(d).month() as i32).collect(),
                ))),
                None => Ok(None),
            },
            _ => Ok(None),
        },
        F::Year | F::Month => Ok(None),
        F::StrPrefix | F::StrContains => {
            if args.len() != 2 {
                return Ok(None);
            }
            if let (TailArg::Col(b), TailArg::Const(AtomValue::Str(pat))) = (&args[0], &args[1]) {
                if let TypedSlice::Str(sv) = b.typed() {
                    use crate::typed::TypedVals;
                    let mut out = Vec::with_capacity(n);
                    for i in 0..n {
                        let s = sv.value(i);
                        out.push(if f == F::StrPrefix {
                            s.starts_with(&**pat)
                        } else {
                            s.contains(&**pat)
                        });
                    }
                    return Ok(Some(Column::from_bools(out)));
                }
                if let TypedSlice::DictStr(dv) = b.typed() {
                    // Evaluate the predicate once per *dictionary entry*,
                    // then broadcast through the codes — the win scales
                    // with the duplication the dictionary removed.
                    use crate::typed::TypedVals;
                    let dict = dv.dict();
                    let hit: Vec<bool> = (0..dict.len())
                        .map(|c| {
                            let s = dict.value(c);
                            if f == F::StrPrefix {
                                s.starts_with(&**pat)
                            } else {
                                s.contains(&**pat)
                            }
                        })
                        .collect();
                    return Ok(Some(Column::from_bools(
                        (0..dv.codes().len()).map(|i| hit[dv.code_at(i)]).collect(),
                    )));
                }
            }
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Date;

    fn synced_pair() -> (Bat, Bat) {
        let head = Column::from_oids(vec![1, 2, 3]);
        let price = Bat::new(head.clone(), Column::from_dbls(vec![100.0, 200.0, 300.0]));
        let disc = Bat::new(head, Column::from_dbls(vec![0.1, 0.2, 0.3]));
        (price, disc)
    }

    #[test]
    fn q13_revenue_expression() {
        // [*](price, [-](1.0, discount))
        let ctx = ExecCtx::new().with_trace();
        let (price, disc) = synced_pair();
        let factor = multiplex(
            &ctx,
            ScalarFunc::Sub,
            &[MultArg::Const(AtomValue::Dbl(1.0)), MultArg::Bat(disc)],
        )
        .unwrap();
        let revenue = multiplex(
            &ctx,
            ScalarFunc::Mul,
            &[MultArg::Bat(price.clone()), MultArg::Bat(factor.clone())],
        )
        .unwrap();
        assert!(factor.synced(&price));
        assert!(revenue.synced(&price));
        let r = revenue.tail().as_dbl_slice().unwrap();
        assert!((r[0] - 90.0).abs() < 1e-9);
        assert!((r[1] - 160.0).abs() < 1e-9);
        assert!((r[2] - 210.0).abs() < 1e-9);
        let trace = ctx.take_trace();
        assert!(trace.iter().all(|e| e.algo == "sync"));
    }

    #[test]
    fn year_multiplex() {
        let ctx = ExecCtx::new();
        let dates = Bat::new(
            Column::from_oids(vec![1, 2]),
            Column::from_dates(vec![Date::from_ymd(1994, 3, 1), Date::from_ymd(1996, 7, 4)]),
        );
        let years = multiplex(&ctx, ScalarFunc::Year, &[MultArg::Bat(dates)]).unwrap();
        assert_eq!(years.tail().as_int_slice().unwrap(), &[1994, 1996]);
    }

    #[test]
    fn unsynced_aligns_by_head() {
        let ctx = ExecCtx::new().with_trace();
        let a = Bat::new(Column::from_oids(vec![1, 2, 3]), Column::from_ints(vec![10, 20, 30]));
        let b = Bat::new(Column::from_oids(vec![3, 1, 2]), Column::from_ints(vec![3, 1, 2]));
        let r = multiplex(&ctx, ScalarFunc::Add, &[MultArg::Bat(a), MultArg::Bat(b)]).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "hash-align");
        assert_eq!(r.tail().as_int_slice().unwrap(), &[11, 22, 33]);
    }

    #[test]
    fn alignment_drops_missing_heads() {
        let ctx = ExecCtx::new();
        let a = Bat::new(Column::from_oids(vec![1, 2, 3]), Column::from_ints(vec![10, 20, 30]));
        let b = Bat::new(Column::from_oids(vec![3]), Column::from_ints(vec![3]));
        let r = multiplex(&ctx, ScalarFunc::Add, &[MultArg::Bat(a), MultArg::Bat(b)]).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.head().oid_at(0), 3);
        assert_eq!(r.tail().int_at(0), 33);
    }

    #[test]
    fn comparisons_produce_bools() {
        let ctx = ExecCtx::new();
        let a = Bat::new(Column::from_oids(vec![1, 2]), Column::from_ints(vec![5, 10]));
        let r =
            multiplex(&ctx, ScalarFunc::Ge, &[MultArg::Bat(a), MultArg::Const(AtomValue::Int(7))])
                .unwrap();
        assert_eq!(r.tail().as_chr_slice(), None);
        assert!(!r.tail().bool_at(0));
        assert!(r.tail().bool_at(1));
    }

    #[test]
    fn string_prefix() {
        let v = apply_scalar(
            ScalarFunc::StrPrefix,
            &[AtomValue::str("PROMO BURNISHED"), AtomValue::str("PROMO")],
        )
        .unwrap();
        assert_eq!(v, AtomValue::Bool(true));
    }

    #[test]
    fn scalar_errors() {
        assert!(apply_scalar(ScalarFunc::Div, &[AtomValue::Int(1), AtomValue::Int(0)]).is_err());
        assert!(apply_scalar(ScalarFunc::Year, &[AtomValue::Int(1)]).is_err());
        assert!(apply_scalar(ScalarFunc::Add, &[AtomValue::Int(1)]).is_err());
        assert!(apply_scalar(ScalarFunc::And, &[AtomValue::Int(1), AtomValue::Bool(true)]).is_err());
    }

    #[test]
    fn unary_over_supplied_args_are_rejected() {
        // The typed fast path must not swallow extra arguments the generic
        // path rejects with an arity error.
        let ctx = ExecCtx::new();
        let head = Column::from_oids(vec![1, 2]);
        let bools = Bat::new(head.clone(), Column::from_bools(vec![true, false]));
        let extra = Bat::new(head.clone(), Column::from_bools(vec![false, true]));
        assert!(multiplex(
            &ctx,
            ScalarFunc::Not,
            &[MultArg::Bat(bools), MultArg::Bat(extra.clone())]
        )
        .is_err());
        let ints = Bat::new(head.clone(), Column::from_ints(vec![1, 2]));
        assert!(
            multiplex(&ctx, ScalarFunc::Neg, &[MultArg::Bat(ints), MultArg::Bat(extra)]).is_err()
        );
        let dates = Bat::new(head, Column::from_date_days(vec![100, 200]));
        assert!(multiplex(
            &ctx,
            ScalarFunc::Year,
            &[MultArg::Bat(dates), MultArg::Const(AtomValue::Int(1))]
        )
        .is_err());
    }

    #[test]
    fn no_bat_argument_is_error() {
        let ctx = ExecCtx::new();
        assert!(multiplex(&ctx, ScalarFunc::Add, &[MultArg::Const(AtomValue::Int(1))]).is_err());
    }

    #[test]
    fn empty_bats() {
        let ctx = ExecCtx::new();
        let a = Bat::new(Column::from_oids(vec![]), Column::from_dbls(vec![]));
        let r = multiplex(
            &ctx,
            ScalarFunc::Mul,
            &[MultArg::Bat(a), MultArg::Const(AtomValue::Dbl(2.0))],
        )
        .unwrap();
        assert_eq!(r.len(), 0);
        assert_eq!(r.tail().atom_type(), AtomType::Dbl);
    }
}
