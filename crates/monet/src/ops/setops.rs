//! Set operations on BATs viewed as sets of BUN pairs: union, difference,
//! intersection. MOA's set operations on identified value sets translate to
//! these plus the head-based `semijoin`/`antijoin` of [`super::semijoin`].

use std::collections::HashMap;
use std::time::Instant;

use crate::atom::AtomValue;
use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::Result;
use crate::pager;

use super::check_comparable;

fn check_both(op: &'static str, ab: &Bat, cd: &Bat) -> Result<()> {
    check_comparable(op, ab.head().atom_type(), cd.head().atom_type())?;
    check_comparable(op, ab.tail().atom_type(), cd.tail().atom_type())
}

/// Pair-set membership structure over a BAT.
struct PairSet<'a> {
    bat: &'a Bat,
    buckets: HashMap<u64, Vec<u32>>,
}

impl<'a> PairSet<'a> {
    fn build(bat: &'a Bat) -> PairSet<'a> {
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for i in 0..bat.len() {
            let key = pair_hash(bat, i);
            buckets.entry(key).or_default().push(i as u32);
        }
        PairSet { bat, buckets }
    }

    fn contains(&self, other: &Bat, i: usize) -> bool {
        let key = pair_hash(other, i);
        self.buckets.get(&key).is_some_and(|v| {
            v.iter().any(|&p| {
                self.bat.head().eq_at(p as usize, other.head(), i)
                    && self.bat.tail().eq_at(p as usize, other.tail(), i)
            })
        })
    }
}

fn pair_hash(b: &Bat, i: usize) -> u64 {
    b.head().hash_at(i).rotate_left(17) ^ b.tail().hash_at(i)
}

fn touch_both(ctx: &ExecCtx, ab: &Bat, cd: &Bat) {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.head());
        pager::touch_scan(p, ab.tail());
        pager::touch_scan(p, cd.head());
        pager::touch_scan(p, cd.tail());
    }
}

/// Set union of the BUN pairs of both operands (duplicates eliminated,
/// left-operand order first).
pub fn union_pairs(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    check_both("union", ab, cd)?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    touch_both(ctx, ab, cd);
    let head_ty = ab.head().atom_type();
    let tail_ty = ab.tail().atom_type();
    let mut heads: Vec<AtomValue> = Vec::with_capacity(ab.len() + cd.len());
    let mut tails: Vec<AtomValue> = Vec::with_capacity(ab.len() + cd.len());
    // Dedup across the concatenation.
    let mut seen: HashMap<u64, Vec<(u8, u32)>> = HashMap::new();
    let push = |src: &Bat,
                tag: u8,
                i: usize,
                seen: &mut HashMap<u64, Vec<(u8, u32)>>,
                heads: &mut Vec<AtomValue>,
                tails: &mut Vec<AtomValue>| {
        let key = pair_hash(src, i);
        let bucket = seen.entry(key).or_default();
        let dup = bucket.iter().any(|&(t, p)| {
            let other = if t == 0 { ab } else { cd };
            other.head().eq_at(p as usize, src.head(), i)
                && other.tail().eq_at(p as usize, src.tail(), i)
        });
        if !dup {
            bucket.push((tag, i as u32));
            heads.push(src.head().get(i));
            tails.push(src.tail().get(i));
        }
    };
    for i in 0..ab.len() {
        push(ab, 0, i, &mut seen, &mut heads, &mut tails);
    }
    for i in 0..cd.len() {
        push(cd, 1, i, &mut seen, &mut heads, &mut tails);
    }
    let result = Bat::new(Column::from_atoms(head_ty, heads), Column::from_atoms(tail_ty, tails));
    ctx.record("union", "hash", started, faults0, &result);
    Ok(result)
}

/// Pairs of `AB` that do not occur in `CD` (set difference).
pub fn diff_pairs(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    check_both("difference", ab, cd)?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    touch_both(ctx, ab, cd);
    let set = PairSet::build(cd);
    let idx: Vec<u32> = (0..ab.len()).filter(|&i| !set.contains(ab, i)).map(|i| i as u32).collect();
    let result = subset(ab, &idx);
    ctx.record("difference", "hash", started, faults0, &result);
    Ok(result)
}

/// Concatenate the BUNs of two BATs (bag semantics, left first). Column
/// types must match; `void` and `oid` combine into a materialized `oid`
/// column.
pub fn concat_bats(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    check_both("concat", ab, cd)?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    touch_both(ctx, ab, cd);
    let pick = |t: crate::atom::AtomType| {
        if t == crate::atom::AtomType::Void {
            crate::atom::AtomType::Oid
        } else {
            t
        }
    };
    let head_ty = pick(ab.head().atom_type());
    let tail_ty = pick(ab.tail().atom_type());
    let head = Column::from_atoms(
        head_ty,
        ab.head().iter().chain(cd.head().iter()).map(|v| match v {
            AtomValue::Void(o) => AtomValue::Oid(o),
            other => other,
        }),
    );
    let tail = Column::from_atoms(
        tail_ty,
        ab.tail().iter().chain(cd.tail().iter()).map(|v| match v {
            AtomValue::Void(o) => AtomValue::Oid(o),
            other => other,
        }),
    );
    let result = Bat::new(head, tail);
    ctx.record("concat", "copy", started, faults0, &result);
    Ok(result)
}

/// Positional combination of two *synced* BATs: `{b_i · d_i}` — the tails
/// of `AB` become the heads, the tails of `CD` the tails, pairing by
/// position. The synced property guarantees the heads correspond, making
/// this a zero-lookup join.
pub fn zip(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    if !ab.synced(cd) {
        return Err(crate::error::MonetError::Malformed {
            op: "zip",
            detail: "operands must be synced (identical head columns)".into(),
        });
    }
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
        pager::touch_scan(p, cd.tail());
    }
    use crate::props::{ColProps, Props};
    let pa = ab.props();
    let pc = cd.props();
    let result = Bat::with_props(
        ab.tail().clone(),
        cd.tail().clone(),
        Props::new(
            ColProps { sorted: pa.tail.sorted, key: pa.tail.key, dense: pa.tail.dense },
            ColProps { sorted: pc.tail.sorted, key: pc.tail.key, dense: pc.tail.dense },
        ),
    );
    ctx.record("zip", "sync", started, faults0, &result);
    Ok(result)
}

/// Pairs of `AB` that also occur in `CD` (set intersection, left order).
pub fn intersect_pairs(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    check_both("intersect", ab, cd)?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    touch_both(ctx, ab, cd);
    let set = PairSet::build(cd);
    let idx: Vec<u32> = (0..ab.len()).filter(|&i| set.contains(ab, i)).map(|i| i as u32).collect();
    let result = subset(ab, &idx);
    ctx.record("intersect", "hash", started, faults0, &result);
    Ok(result)
}

fn subset(ab: &Bat, idx: &[u32]) -> Bat {
    use crate::props::{ColProps, Props};
    let p = ab.props();
    Bat::with_props(
        ab.head().gather(idx),
        ab.tail().gather(idx),
        Props::new(
            ColProps { sorted: p.head.sorted, key: p.head.key, dense: false },
            ColProps { sorted: p.tail.sorted, key: p.tail.key, dense: false },
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bat(pairs: &[(u64, i32)]) -> Bat {
        Bat::new(
            Column::from_oids(pairs.iter().map(|p| p.0).collect()),
            Column::from_ints(pairs.iter().map(|p| p.1).collect()),
        )
    }

    fn pairs(b: &Bat) -> Vec<(u64, i32)> {
        let mut v: Vec<(u64, i32)> =
            (0..b.len()).map(|i| (b.head().oid_at(i), b.tail().int_at(i))).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn union_dedups() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 10), (2, 20), (2, 20)]);
        let b = bat(&[(2, 20), (3, 30)]);
        let r = union_pairs(&ctx, &a, &b).unwrap();
        assert_eq!(pairs(&r), vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn difference() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 10), (2, 20), (3, 30)]);
        let b = bat(&[(2, 20), (3, 99)]);
        let r = diff_pairs(&ctx, &a, &b).unwrap();
        // (3,30) stays: the *pair* (3,30) is not in b
        assert_eq!(pairs(&r), vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn intersection() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 10), (2, 20), (3, 30)]);
        let b = bat(&[(3, 30), (1, 10), (4, 40)]);
        let r = intersect_pairs(&ctx, &a, &b).unwrap();
        assert_eq!(pairs(&r), vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn algebraic_identities() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 1), (2, 2), (5, 5)]);
        let b = bat(&[(2, 2), (7, 7)]);
        let u = union_pairs(&ctx, &a, &b).unwrap();
        let i = intersect_pairs(&ctx, &a, &b).unwrap();
        let da = diff_pairs(&ctx, &a, &b).unwrap();
        let db = diff_pairs(&ctx, &b, &a).unwrap();
        // |A ∪ B| = |A \ B| + |B \ A| + |A ∩ B|
        assert_eq!(u.len(), da.len() + db.len() + i.len());
    }

    #[test]
    fn concat_appends() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 10), (2, 20)]);
        let b = bat(&[(2, 20), (3, 30)]);
        let r = concat_bats(&ctx, &a, &b).unwrap();
        assert_eq!(r.len(), 4); // bag semantics: no dedup
        assert_eq!(pairs(&r), vec![(1, 10), (2, 20), (2, 20), (3, 30)]);
    }

    #[test]
    fn concat_void_materializes() {
        let ctx = ExecCtx::new();
        let a = Bat::new(Column::from_oids(vec![5]), Column::void(9, 1));
        let b = Bat::new(Column::from_oids(vec![6]), Column::void(3, 1));
        let r = concat_bats(&ctx, &a, &b).unwrap();
        assert_eq!(r.tail().as_oid_slice().unwrap(), &[9, 3]);
    }

    #[test]
    fn zip_requires_synced() {
        let ctx = ExecCtx::new();
        let head = Column::from_oids(vec![1, 2]);
        let a = Bat::new(head.clone(), Column::from_ints(vec![10, 20]));
        let b = Bat::new(head, Column::from_strs(["x", "y"]));
        let z = zip(&ctx, &a, &b).unwrap();
        assert_eq!(z.head().as_int_slice().unwrap(), &[10, 20]);
        assert_eq!(z.tail().str_at(1), "y");
        let c = Bat::new(Column::from_oids(vec![1, 2]), Column::from_ints(vec![0, 0]));
        assert!(zip(&ctx, &a, &c).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 1)]);
        let b = Bat::new(Column::from_oids(vec![1]), Column::from_dbls(vec![1.0]));
        assert!(union_pairs(&ctx, &a, &b).is_err());
    }

    #[test]
    fn empty_operands() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 1)]);
        let e = bat(&[]);
        assert_eq!(pairs(&union_pairs(&ctx, &a, &e).unwrap()), vec![(1, 1)]);
        assert_eq!(pairs(&diff_pairs(&ctx, &a, &e).unwrap()), vec![(1, 1)]);
        assert_eq!(intersect_pairs(&ctx, &a, &e).unwrap().len(), 0);
        assert_eq!(intersect_pairs(&ctx, &e, &a).unwrap().len(), 0);
    }
}
