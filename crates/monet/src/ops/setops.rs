//! Set operations on BATs viewed as sets of BUN pairs: union, difference,
//! intersection. MOA's set operations on identified value sets translate to
//! these plus the head-based `semijoin`/`antijoin` of [`super::semijoin`].

use std::time::Instant;

use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::Result;
use crate::pager;
use crate::typed::{hash_column, GroupTable};

use super::check_comparable;

fn check_both(op: &'static str, ab: &Bat, cd: &Bat) -> Result<()> {
    check_comparable(op, ab.head().atom_type(), cd.head().atom_type())?;
    check_comparable(op, ab.tail().atom_type(), cd.tail().atom_type())
}

/// Per-row (head, tail) pair hashes of a BAT, computed in two bulk typed
/// passes — no per-row type dispatch.
fn pair_hashes(b: &Bat) -> Vec<u64> {
    let hh = hash_column(b.head());
    let th = hash_column(b.tail());
    hh.iter().zip(&th).map(|(&h, &t)| h.rotate_left(17) ^ t).collect()
}

/// Pair-set membership structure over a BAT: a [`GroupTable`] keyed on the
/// full 64-bit pair hash (duplicate pairs collapse — membership is all
/// that's asked); value equality is only re-checked on true hash matches,
/// so the generic compare runs once per *matching* row, not per probe.
struct PairSet<'a> {
    bat: &'a Bat,
    table: GroupTable,
}

impl<'a> PairSet<'a> {
    fn build(bat: &'a Bat) -> PairSet<'a> {
        let hashes = pair_hashes(bat);
        let mut table = GroupTable::with_capacity(bat.len());
        for (i, &h) in hashes.iter().enumerate() {
            table.find_or_insert(h, i as u32, |rep| {
                let p = rep as usize;
                bat.head().eq_at(p, bat.head(), i) && bat.tail().eq_at(p, bat.tail(), i)
            });
        }
        PairSet { bat, table }
    }

    fn contains(&self, other: &Bat, i: usize, key: u64) -> bool {
        self.table
            .find(key, |rep| {
                let p = rep as usize;
                self.bat.head().eq_at(p, other.head(), i)
                    && self.bat.tail().eq_at(p, other.tail(), i)
            })
            .is_some()
    }
}

fn touch_both(ctx: &ExecCtx, ab: &Bat, cd: &Bat) {
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.head());
        pager::touch_scan(p, ab.tail());
        pager::touch_scan(p, cd.head());
        pager::touch_scan(p, cd.tail());
    }
}

/// Set union of the BUN pairs of both operands (duplicates eliminated,
/// left-operand order first).
pub fn union_pairs(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/union")?;
    check_both("union", ab, cd)?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    touch_both(ctx, ab, cd);
    // Dedup across the concatenation: one [`GroupTable`] over the pair
    // hashes of both operands (ab rows at entry i, cd rows at entry
    // ab.len() + i), generic equality only on full-hash matches.
    let (na, nc) = (ab.len(), cd.len());
    let mut hashes = pair_hashes(ab);
    hashes.extend(pair_hashes(cd));
    let mut keep_a: Vec<u32> = Vec::with_capacity(na);
    let mut keep_c: Vec<u32> = Vec::with_capacity(nc);
    let row_of = |e: usize| -> (&Bat, usize) {
        if e < na {
            (ab, e)
        } else {
            (cd, e - na)
        }
    };
    let mut table = GroupTable::with_capacity(na + nc);
    for e in 0..na + nc {
        let (src, i) = row_of(e);
        let (_, inserted) = table.find_or_insert(hashes[e], e as u32, |rep| {
            let (kb, kj) = row_of(rep as usize);
            kb.head().eq_at(kj, src.head(), i) && kb.tail().eq_at(kj, src.tail(), i)
        });
        if inserted {
            if e < na {
                keep_a.push(i as u32);
            } else {
                keep_c.push(i as u32);
            }
        }
    }
    let head = Column::concat(&ab.head().gather(&keep_a), &cd.head().gather(&keep_c));
    let tail = Column::concat(&ab.tail().gather(&keep_a), &cd.tail().gather(&keep_c));
    let result = Bat::new(head, tail);
    ctx.record("union", "hash", started, faults0, &result)?;
    Ok(result)
}

/// Pairs of `AB` that do not occur in `CD` (set difference).
pub fn diff_pairs(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/difference")?;
    check_both("difference", ab, cd)?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    touch_both(ctx, ab, cd);
    let set = PairSet::build(cd);
    let keys = pair_hashes(ab);
    let idx: Vec<u32> =
        (0..ab.len()).filter(|&i| !set.contains(ab, i, keys[i])).map(|i| i as u32).collect();
    let result = subset(ab, &idx);
    ctx.record("difference", "hash", started, faults0, &result)?;
    Ok(result)
}

/// Concatenate the BUNs of two BATs (bag semantics, left first). Column
/// types must match; `void` and `oid` combine into a materialized `oid`
/// column.
pub fn concat_bats(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/concat")?;
    check_both("concat", ab, cd)?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    touch_both(ctx, ab, cd);
    let head = Column::concat(ab.head(), cd.head());
    let tail = Column::concat(ab.tail(), cd.tail());
    let result = Bat::new(head, tail);
    ctx.record("concat", "copy", started, faults0, &result)?;
    Ok(result)
}

/// Positional combination of two *synced* BATs: `{b_i · d_i}` — the tails
/// of `AB` become the heads, the tails of `CD` the tails, pairing by
/// position. The synced property guarantees the heads correspond, making
/// this a zero-lookup join.
pub fn zip(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/zip")?;
    if !ab.synced(cd) {
        return Err(crate::error::MonetError::Malformed {
            op: "zip",
            detail: "operands must be synced (identical head columns)".into(),
        });
    }
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
        pager::touch_scan(p, cd.tail());
    }
    use crate::props::{ColProps, Props};
    let pa = ab.props();
    let pc = cd.props();
    let result = Bat::with_props(
        ab.tail().clone(),
        cd.tail().clone(),
        Props::new(
            ColProps {
                sorted: pa.tail.sorted,
                key: pa.tail.key,
                dense: pa.tail.dense,
                ..ColProps::NONE
            },
            ColProps {
                sorted: pc.tail.sorted,
                key: pc.tail.key,
                dense: pc.tail.dense,
                ..ColProps::NONE
            },
        ),
    );
    ctx.record("zip", "sync", started, faults0, &result)?;
    Ok(result)
}

/// Pairs of `AB` that also occur in `CD` (set intersection, left order).
pub fn intersect_pairs(ctx: &ExecCtx, ab: &Bat, cd: &Bat) -> Result<Bat> {
    ctx.probe("op/intersect")?;
    check_both("intersect", ab, cd)?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    touch_both(ctx, ab, cd);
    let set = PairSet::build(cd);
    let keys = pair_hashes(ab);
    let idx: Vec<u32> =
        (0..ab.len()).filter(|&i| set.contains(ab, i, keys[i])).map(|i| i as u32).collect();
    let result = subset(ab, &idx);
    ctx.record("intersect", "hash", started, faults0, &result)?;
    Ok(result)
}

fn subset(ab: &Bat, idx: &[u32]) -> Bat {
    use crate::props::{ColProps, Props};
    let p = ab.props();
    Bat::with_props(
        ab.head().gather(idx),
        ab.tail().gather(idx),
        Props::new(
            ColProps { sorted: p.head.sorted, key: p.head.key, dense: false, ..ColProps::NONE },
            ColProps { sorted: p.tail.sorted, key: p.tail.key, dense: false, ..ColProps::NONE },
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bat(pairs: &[(u64, i32)]) -> Bat {
        Bat::new(
            Column::from_oids(pairs.iter().map(|p| p.0).collect()),
            Column::from_ints(pairs.iter().map(|p| p.1).collect()),
        )
    }

    fn pairs(b: &Bat) -> Vec<(u64, i32)> {
        let mut v: Vec<(u64, i32)> =
            (0..b.len()).map(|i| (b.head().oid_at(i), b.tail().int_at(i))).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn union_dedups() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 10), (2, 20), (2, 20)]);
        let b = bat(&[(2, 20), (3, 30)]);
        let r = union_pairs(&ctx, &a, &b).unwrap();
        assert_eq!(pairs(&r), vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn difference() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 10), (2, 20), (3, 30)]);
        let b = bat(&[(2, 20), (3, 99)]);
        let r = diff_pairs(&ctx, &a, &b).unwrap();
        // (3,30) stays: the *pair* (3,30) is not in b
        assert_eq!(pairs(&r), vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn intersection() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 10), (2, 20), (3, 30)]);
        let b = bat(&[(3, 30), (1, 10), (4, 40)]);
        let r = intersect_pairs(&ctx, &a, &b).unwrap();
        assert_eq!(pairs(&r), vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn algebraic_identities() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 1), (2, 2), (5, 5)]);
        let b = bat(&[(2, 2), (7, 7)]);
        let u = union_pairs(&ctx, &a, &b).unwrap();
        let i = intersect_pairs(&ctx, &a, &b).unwrap();
        let da = diff_pairs(&ctx, &a, &b).unwrap();
        let db = diff_pairs(&ctx, &b, &a).unwrap();
        // |A ∪ B| = |A \ B| + |B \ A| + |A ∩ B|
        assert_eq!(u.len(), da.len() + db.len() + i.len());
    }

    #[test]
    fn concat_appends() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 10), (2, 20)]);
        let b = bat(&[(2, 20), (3, 30)]);
        let r = concat_bats(&ctx, &a, &b).unwrap();
        assert_eq!(r.len(), 4); // bag semantics: no dedup
        assert_eq!(pairs(&r), vec![(1, 10), (2, 20), (2, 20), (3, 30)]);
    }

    #[test]
    fn concat_void_materializes() {
        let ctx = ExecCtx::new();
        let a = Bat::new(Column::from_oids(vec![5]), Column::void(9, 1));
        let b = Bat::new(Column::from_oids(vec![6]), Column::void(3, 1));
        let r = concat_bats(&ctx, &a, &b).unwrap();
        assert_eq!(r.tail().as_oid_slice().unwrap(), &[9, 3]);
    }

    #[test]
    fn zip_requires_synced() {
        let ctx = ExecCtx::new();
        let head = Column::from_oids(vec![1, 2]);
        let a = Bat::new(head.clone(), Column::from_ints(vec![10, 20]));
        let b = Bat::new(head, Column::from_strs(["x", "y"]));
        let z = zip(&ctx, &a, &b).unwrap();
        assert_eq!(z.head().as_int_slice().unwrap(), &[10, 20]);
        assert_eq!(z.tail().str_at(1), "y");
        let c = Bat::new(Column::from_oids(vec![1, 2]), Column::from_ints(vec![0, 0]));
        assert!(zip(&ctx, &a, &c).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 1)]);
        let b = Bat::new(Column::from_oids(vec![1]), Column::from_dbls(vec![1.0]));
        assert!(union_pairs(&ctx, &a, &b).is_err());
    }

    #[test]
    fn empty_operands() {
        let ctx = ExecCtx::new();
        let a = bat(&[(1, 1)]);
        let e = bat(&[]);
        assert_eq!(pairs(&union_pairs(&ctx, &a, &e).unwrap()), vec![(1, 1)]);
        assert_eq!(pairs(&diff_pairs(&ctx, &a, &e).unwrap()), vec![(1, 1)]);
        assert_eq!(intersect_pairs(&ctx, &a, &e).unwrap().len(), 0);
        assert_eq!(intersect_pairs(&ctx, &e, &a).unwrap().len(), 0);
    }
}
