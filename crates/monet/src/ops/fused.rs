//! Fused-pipeline executor: run a `select/map/…/(aggr)` chain in one pass
//! over the source BAT, morsel-at-a-time, with no intermediate BATs.
//!
//! The planner's fuse pass ([`crate::mil::opt`]) only admits chains whose
//! fused evaluation is bit-identical to the staged one; this module holds
//! up the other half of that contract at run time. Conditions the planner
//! cannot see statically (a runtime-sorted tail, an unsynced side BAT)
//! route through [`run_staged`], which replays the chain through the
//! ordinary kernels — the fused statement then *is* the staged execution.
//!
//! Per-morsel stage kernels reuse the staged kernels' inner loops
//! verbatim: the select predicates and dict code-range resolution mirror
//! [`super::select`], maps go through [`super::multiplex::eval_tail_window`]
//! (the same code `mux_synced` runs per morsel), and aggregate partials
//! replicate [`super::aggregate::aggr_scalar`]'s morsel decomposition.
//! Each stage probes its own `fuse/<op>` governor site per morsel, so
//! cancellation and fault injection reach every fused stage.

use std::sync::Arc;
use std::time::Instant;

use crate::atom::{AtomType, AtomValue};
use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::{MonetError, Result};
use crate::gov::{site, Governor};
use crate::pager;
use crate::props::{ColProps, Enc, Props};
use crate::typed::TypedVals;

use super::aggregate::AggFunc;
use super::multiplex::{eval_tail_window, TailArg};
use super::select::propagated_props;
use super::{MultArg, ScalarFunc};

/// One argument of a fused map stage. `Chain` is the value flowing through
/// the pipeline; `Side` is another BAT read positionally alongside the
/// source; `Const` broadcasts.
#[derive(Clone)]
pub enum FArg {
    Chain,
    Side(Bat),
    Const(AtomValue),
}

/// One stage of a fused pipeline, in execution order. An `Aggr` stage is
/// always last.
#[derive(Clone)]
pub enum Stage {
    SelectEq(AtomValue),
    SelectRange { lo: Option<AtomValue>, hi: Option<AtomValue>, inc_lo: bool, inc_hi: bool },
    Map { f: ScalarFunc, args: Vec<FArg> },
    Aggr(AggFunc),
}

impl Stage {
    fn site(&self) -> &'static str {
        match self {
            Stage::SelectEq(_) | Stage::SelectRange { .. } => site::FUSE_SELECT,
            Stage::Map { .. } => site::FUSE_MULTIPLEX,
            Stage::Aggr(_) => site::FUSE_AGGR,
        }
    }
}

/// A fused chain ends in either a BAT (select/map terminal) or a scalar
/// (aggregate terminal).
pub enum FusedOut {
    Bat(Bat),
    Scalar(AtomValue),
}

/// Per-morsel result: the surviving chain window (absent after a terminal
/// aggregate), the global source positions of its rows (present once any
/// selection ran), the chain length after every stage, and the aggregate
/// partial.
struct MorselOut {
    window: Option<Column>,
    positions: Option<Vec<u32>>,
    counts: Vec<usize>,
    partial: Option<Partial>,
}

/// Aggregate partial per morsel, mirroring `aggr_scalar`'s morsel
/// decomposition: exact integer accumulators regroup freely; float sums
/// only appear when the fused grid equals the staged grid (the planner
/// guarantees no selection precedes them); min/max carry the window's
/// first-winner value.
enum Partial {
    /// The count itself lives in the per-stage row counts.
    Count,
    SumI(i64),
    SumF(f64),
    Best(Option<AtomValue>),
}

/// Execute a fused chain over `src`. Bit-identical to running the stages
/// through the staged kernels, by construction (admission rules) plus the
/// runtime fallbacks below.
pub fn run_fused(ctx: &ExecCtx, src: &Bat, stages: &[Stage]) -> Result<FusedOut> {
    // Runtime conditions the fuse pass cannot prove route to the staged
    // replay: the staged kernels answer a sorted-tail selection with a
    // zero-copy binary-search slice (cheaper, and with runtime props the
    // static propagation rules cannot claim), and a side BAT is only
    // windowable when it is positionally synced with the source and no
    // selection has disturbed the row alignment.
    if src.len() == 0 {
        return run_staged(ctx, src, stages);
    }
    let mut cur = src.props();
    let mut filtered = false;
    for stage in stages {
        match stage {
            Stage::SelectEq(_) | Stage::SelectRange { .. } => {
                if cur.tail.sorted {
                    return run_staged(ctx, src, stages);
                }
                cur = propagated_props(cur, matches!(stage, Stage::SelectEq(_)));
                filtered = true;
            }
            Stage::Map { args, .. } => {
                for a in args {
                    if let FArg::Side(b) = a {
                        if filtered || !src.synced(b) {
                            return run_staged(ctx, src, stages);
                        }
                    }
                }
                cur = Props::new(map_head_props(&cur, args), ColProps::NONE);
            }
            Stage::Aggr(_) => {}
        }
    }

    let started = Instant::now();
    let faults0 = ctx.faults();
    let n = src.len();
    if let Some(p) = ctx.pager.as_deref() {
        // One scan of every column the pipeline reads. This is the staged
        // cost minus the intermediate materializations — an approximation
        // (the staged select paths may touch-fetch instead), acceptable
        // because the pager is a cost-model instrument, not a correctness
        // surface.
        pager::touch_scan(p, src.tail());
        for stage in stages {
            if let Stage::Map { args, .. } = stage {
                for a in args {
                    if let FArg::Side(b) = a {
                        pager::touch_scan(p, b.tail());
                    }
                }
            }
        }
    }
    let threads = super::par_threads(ctx, n);
    let gov = Arc::clone(&ctx.gov);
    let tail = src.tail().clone();
    let stages_arc: Arc<Vec<Stage>> = Arc::new(stages.to_vec());
    let parts = crate::par::try_for_each_morsel(&ctx.gov, n, threads, move |r| {
        eval_morsel(&gov, &tail, &stages_arc, r)
    })?;
    // Surface the first error in morsel order (matching the staged
    // kernels, which stop at the earliest failing row's morsel).
    let parts: Vec<MorselOut> = parts.into_iter().collect::<Result<_>>()?;

    let mut counts_total = vec![0usize; stages.len()];
    for p in &parts {
        for (si, &c) in p.counts.iter().enumerate() {
            counts_total[si] += c;
        }
    }

    if let Some(Stage::Aggr(f)) = stages.last() {
        // Rows reaching the aggregate = chain length after the stage
        // before it.
        let n_agg = counts_total[stages.len() - 2];
        return Ok(FusedOut::Scalar(merge_partials(*f, n_agg, parts)?));
    }

    // BAT terminal: concatenate the windows in morsel order (the staged
    // row order), gather the head donor by the surviving positions, and
    // replay the property propagation the staged kernels would have done.
    let mut windows: Vec<Column> = Vec::with_capacity(parts.len());
    let mut positions: Option<Vec<u32>> =
        if filtered { Some(Vec::with_capacity(*counts_total.last().unwrap_or(&0))) } else { None };
    for p in parts {
        windows.push(p.window.expect("non-aggregate chain yields a window"));
        if let (Some(all), Some(part)) = (positions.as_mut(), p.positions) {
            all.extend_from_slice(&part);
        }
    }
    // Empty windows are dropped before concatenation: a zero-row map
    // window types its output by static hint, which can disagree with the
    // value-derived type of non-empty windows. When *all* windows are
    // empty the first one's hint-typed column stands — the same type an
    // empty staged multiplex would produce.
    if windows.iter().any(|w| w.len() > 0) {
        windows.retain(|w| w.len() > 0);
    } else {
        windows.truncate(1);
    }
    let tail = Column::concat_all(&windows);
    let head = match &positions {
        Some(p) => head_donor(src, stages).gather(p),
        None => head_donor(src, stages),
    };
    let props = replay_props(src, stages, &counts_total);
    let bat = Bat::with_props(head, tail, props);
    ctx.record("fused", "pipeline", started, faults0, &bat)?;
    Ok(FusedOut::Bat(bat))
}

/// Staged replay: the chain through the ordinary kernels, stage by stage.
/// This *is* the unfused execution — same kernels, same dispatch, same
/// records — except that each intermediate's memory charge is released
/// when the next stage supersedes it (the interpreter only releases the
/// fused statement's single result).
fn run_staged(ctx: &ExecCtx, src: &Bat, stages: &[Stage]) -> Result<FusedOut> {
    let mut cur = src.clone();
    let mut charged = 0u64;
    for stage in stages {
        let next = match stage {
            Stage::SelectEq(v) => super::select::select_eq(ctx, &cur, v)?,
            Stage::SelectRange { lo, hi, inc_lo, inc_hi } => {
                super::select::select_range(ctx, &cur, lo.as_ref(), hi.as_ref(), *inc_lo, *inc_hi)?
            }
            Stage::Map { f, args } => {
                let margs: Vec<MultArg> = args
                    .iter()
                    .map(|a| match a {
                        FArg::Chain => MultArg::Bat(cur.clone()),
                        FArg::Side(b) => MultArg::Bat(b.clone()),
                        FArg::Const(v) => MultArg::Const(v.clone()),
                    })
                    .collect();
                super::multiplex::multiplex(ctx, *f, &margs)?
            }
            Stage::Aggr(f) => {
                let v = super::aggregate::aggr_scalar(ctx, &cur, *f)?;
                ctx.mem.release(charged);
                return Ok(FusedOut::Scalar(v));
            }
        };
        ctx.mem.release(charged);
        charged = next.bytes() as u64;
        cur = next;
    }
    // The final stage's charge stays: the interpreter releases the fused
    // statement's value when it dies, exactly balancing it.
    Ok(FusedOut::Bat(cur))
}

/// Evaluate the whole chain over one source morsel.
fn eval_morsel(
    gov: &Arc<Governor>,
    src_tail: &Column,
    stages: &[Stage],
    r: std::ops::Range<usize>,
) -> Result<MorselOut> {
    let mut chain = window_of(src_tail, r.start, r.len());
    let mut positions: Option<Vec<u32>> = None;
    let mut counts = Vec::with_capacity(stages.len());
    let mut partial = None;
    for stage in stages {
        gov.probe(stage.site())?;
        match stage {
            Stage::SelectEq(v) => {
                super::check_comparable("select", chain.atom_type(), v.atom_type())?;
                let idx = select_window(&chain, Some(v), Some(v), true, true);
                apply_select(&mut chain, &mut positions, &idx, r.start);
            }
            Stage::SelectRange { lo, hi, inc_lo, inc_hi } => {
                for v in [lo.as_ref(), hi.as_ref()].into_iter().flatten() {
                    super::check_comparable("select", chain.atom_type(), v.atom_type())?;
                }
                let idx = select_window(&chain, lo.as_ref(), hi.as_ref(), *inc_lo, *inc_hi);
                apply_select(&mut chain, &mut positions, &idx, r.start);
            }
            Stage::Map { f, args } => {
                let wargs: Vec<TailArg> = args
                    .iter()
                    .map(|a| match a {
                        FArg::Chain => TailArg::Col(chain.clone()),
                        // Sides only occur before any selection (enforced
                        // by run_fused), so the chain still spans the full
                        // morsel and the side window aligns positionally.
                        FArg::Side(b) => TailArg::Col(b.tail().slice(r.start, r.len())),
                        FArg::Const(v) => TailArg::Const(v.clone()),
                    })
                    .collect();
                chain = eval_tail_window(*f, &wargs, chain.len())?;
            }
            Stage::Aggr(f) => {
                partial = Some(aggr_window(&chain, *f)?);
            }
        }
        counts.push(chain.len());
    }
    let window = if partial.is_some() { None } else { Some(chain) };
    Ok(MorselOut { window, positions, counts, partial })
}

/// The chain's view of one source morsel. RLE-encoded dbl tails decode
/// run-aware into a fresh buffer — `decoded()` on a window would
/// materialize (and cache) the *full* column, defeating the fused
/// pipeline's memory goal. Other encodings window zero-copy; their
/// kernels decode exactly as the staged ones do.
fn window_of(tail: &Column, start: usize, len: usize) -> Column {
    if tail.encoding() == Enc::Rle && tail.atom_type() == AtomType::Dbl {
        let mut buf = Vec::with_capacity(len);
        if tail.rle_dbl_window_into(start, len, &mut buf) {
            return Column::from_dbls(buf);
        }
    }
    tail.slice(start, len)
}

/// Local selection over one window: the scan predicates of
/// [`super::select`], verbatim, plus the dict code-range fast path (string
/// order equals code order because the dictionary is sorted). Returns the
/// matching window-local indices in row order.
fn select_window(
    w: &Column,
    lo: Option<&AtomValue>,
    hi: Option<&AtomValue>,
    inc_lo: bool,
    inc_hi: bool,
) -> Vec<u32> {
    if w.encoding() == Enc::Dict {
        let d = match w.typed() {
            crate::typed::TypedSlice::DictStr(d) => d,
            _ => unreachable!("dict-encoded window with a non-dict typed view"),
        };
        fn bound_str(v: &AtomValue) -> &str {
            match v {
                AtomValue::Str(s) => s,
                // check_comparable only lets a str constant through for a
                // str tail.
                other => unreachable!("dict-code select with {} bound", other.atom_type()),
            }
        }
        let code_lo = match lo {
            Some(v) if inc_lo => crate::typed::lower_bound_by(d.dict(), bound_str(v)),
            Some(v) => crate::typed::upper_bound_by(d.dict(), bound_str(v)),
            None => 0,
        } as u64;
        let code_hi = match hi {
            Some(v) if inc_hi => crate::typed::upper_bound_by(d.dict(), bound_str(v)),
            Some(v) => crate::typed::lower_bound_by(d.dict(), bound_str(v)),
            None => d.dict_len(),
        } as u64;
        let codes = d.codes();
        let mut idx: Vec<u32> = Vec::new();
        for i in 0..codes.len() {
            let c = codes.get(i);
            if c >= code_lo && c < code_hi {
                idx.push(i as u32);
            }
        }
        return idx;
    }
    crate::for_each_typed!(w, |t| {
        let mut idx: Vec<u32> = Vec::new();
        'row: for i in 0..t.len() {
            let x = t.value(i);
            if let Some(v) = lo {
                let c = t.cmp_atom(x, v);
                if c.is_lt() || (!inc_lo && c.is_eq()) {
                    continue 'row;
                }
            }
            if let Some(v) = hi {
                let c = t.cmp_atom(x, v);
                if c.is_gt() || (!inc_hi && c.is_eq()) {
                    continue 'row;
                }
            }
            idx.push(i as u32);
        }
        idx
    })
}

/// Narrow the chain to the selected rows and fold the selection into the
/// running global-position map.
fn apply_select(
    chain: &mut Column,
    positions: &mut Option<Vec<u32>>,
    idx: &[u32],
    morsel_start: usize,
) {
    *positions = Some(match positions.take() {
        None => idx.iter().map(|&i| (morsel_start + i as usize) as u32).collect(),
        Some(p) => idx.iter().map(|&i| p[i as usize]).collect(),
    });
    *chain = chain.gather(idx);
}

/// Aggregate partial over one window — `aggr_scalar`'s per-morsel bodies,
/// applied to the (possibly filtered or mapped) chain window.
fn aggr_window(w: &Column, f: AggFunc) -> Result<Partial> {
    let m = w.len();
    match f {
        AggFunc::Count => Ok(Partial::Count),
        AggFunc::Sum => match w.atom_type() {
            AtomType::Int => {
                let d = w.decoded();
                let s = d.as_int_slice().expect("int tail").iter().map(|&x| x as i64).sum();
                Ok(Partial::SumI(s))
            }
            AtomType::Lng => {
                let d = w.decoded();
                Ok(Partial::SumI(d.as_lng_slice().expect("lng tail").iter().sum()))
            }
            AtomType::Dbl => {
                let d = w.decoded();
                Ok(Partial::SumF(d.as_dbl_slice().expect("dbl tail").iter().sum()))
            }
            ty => Err(MonetError::Unsupported { op: "sum", ty }),
        },
        AggFunc::Avg => {
            if !matches!(w.atom_type(), AtomType::Int | AtomType::Lng | AtomType::Dbl) {
                return Err(MonetError::Unsupported { op: "avg", ty: w.atom_type() });
            }
            let d = w.decoded();
            let s = match d.atom_type() {
                AtomType::Int => d.as_int_slice().unwrap().iter().map(|&x| x as f64).sum(),
                AtomType::Lng => d.as_lng_slice().unwrap().iter().map(|&x| x as f64).sum(),
                _ => d.as_dbl_slice().unwrap().iter().sum::<f64>(),
            };
            Ok(Partial::SumF(s))
        }
        AggFunc::Min | AggFunc::Max => {
            if m == 0 {
                return Ok(Partial::Best(None));
            }
            let minimize = f == AggFunc::Min;
            let best = crate::for_each_typed!(w, |t| {
                let mut best = 0usize;
                for i in 1..m {
                    let c = t.cmp_one(t.value(i), t.value(best));
                    if if minimize { c.is_lt() } else { c.is_gt() } {
                        best = i;
                    }
                }
                best
            });
            Ok(Partial::Best(Some(w.get(best))))
        }
    }
}

/// Combine aggregate partials in morsel order — the same combine
/// `aggr_scalar` performs over its morsel partials.
fn merge_partials(f: AggFunc, n_agg: usize, parts: Vec<MorselOut>) -> Result<AtomValue> {
    match f {
        AggFunc::Count => Ok(AtomValue::Lng(n_agg as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            let (mut si, mut sf, mut float) = (0i64, 0f64, false);
            for p in parts {
                match p.partial.expect("aggregate chain yields partials") {
                    Partial::SumI(x) => si += x,
                    Partial::SumF(x) => {
                        sf += x;
                        float = true;
                    }
                    _ => unreachable!("sum/avg partial shape"),
                }
            }
            if f == AggFunc::Avg {
                if n_agg == 0 {
                    return Err(MonetError::Malformed {
                        op: "avg",
                        detail: "average of empty BAT".into(),
                    });
                }
                return Ok(AtomValue::Dbl(sf / n_agg as f64));
            }
            Ok(if float { AtomValue::Dbl(sf) } else { AtomValue::Lng(si) })
        }
        AggFunc::Min | AggFunc::Max => {
            let minimize = f == AggFunc::Min;
            let mut best: Option<AtomValue> = None;
            for p in parts {
                let cand = match p.partial.expect("aggregate chain yields partials") {
                    Partial::Best(b) => b,
                    _ => unreachable!("min/max partial shape"),
                };
                let Some(cand) = cand else { continue };
                best = Some(match best.take() {
                    None => cand,
                    Some(b) => {
                        let c = cand.cmp_same_type(&b);
                        // Strict improvement keeps the earliest row holding
                        // the extreme — the staged first-winner rule.
                        if if minimize { c.is_lt() } else { c.is_gt() } {
                            cand
                        } else {
                            b
                        }
                    }
                });
            }
            best.ok_or_else(|| MonetError::Malformed {
                op: f.name(),
                detail: "min/max of empty BAT".into(),
            })
        }
    }
}

/// The column whose rows (gathered by the surviving positions) form the
/// result head: the source head until a map whose first BAT argument is a
/// side — then that side's head, exactly the `mux_synced` donor rule.
fn head_donor(src: &Bat, stages: &[Stage]) -> Column {
    let mut donor = src.head().clone();
    for stage in stages {
        if let Stage::Map { args, .. } = stage {
            let first = args.iter().find_map(|a| match a {
                FArg::Chain => Some(None),
                FArg::Side(b) => Some(Some(b)),
                FArg::Const(_) => None,
            });
            if let Some(Some(b)) = first {
                donor = b.head().clone();
            }
        }
    }
    donor
}

/// Head-property donor for a map stage: the first BAT argument (the chain
/// itself, or a side).
fn map_head_props(cur: &Props, args: &[FArg]) -> ColProps {
    args.iter()
        .find_map(|a| match a {
            FArg::Chain => Some(cur.head),
            FArg::Side(b) => Some(b.props().head),
            FArg::Const(_) => None,
        })
        .unwrap_or(cur.head)
}

/// Replay the staged property propagation over the whole chain, with the
/// runtime strengthening the staged kernels apply (`build_selected` marks
/// a point selection's tail `key` when at most one row survives).
fn replay_props(src: &Bat, stages: &[Stage], counts_total: &[usize]) -> Props {
    let mut cur = src.props();
    for (si, stage) in stages.iter().enumerate() {
        match stage {
            Stage::SelectEq(_) => {
                cur = propagated_props(cur, true);
                cur.tail.key = cur.tail.key || counts_total[si] <= 1;
            }
            Stage::SelectRange { .. } => cur = propagated_props(cur, false),
            Stage::Map { args, .. } => cur = Props::new(map_head_props(&cur, args), ColProps::NONE),
            Stage::Aggr(_) => {}
        }
    }
    cur
}
