//! The BAT algebra (Figure 4): the execution primitives MIL programs are
//! composed of. BAT-algebra operations materialize their result and never
//! change their operands.
//!
//! Every operator performs the *dynamic optimization* step of Section 2:
//! just before execution it inspects the descriptor properties and
//! accelerators of its operands and picks the cheapest implementation —
//! e.g. `semijoin` chooses between `sync`, `merge`, `datavector` and `hash`
//! variants. The chosen algorithm is recorded in the trace so that the
//! detailed execution breakdowns of Figure 10 can show it.
//!
//! Hot loops are **monomorphized** through the typed-kernel layer
//! ([`crate::typed`]): the column type is resolved once per operator call
//! (`for_each_typed!`), never per row. New operators must follow the same
//! rule; the per-row generic forms live on only in [`reference`], the
//! oracle of the specialized-vs-generic property suite.

pub mod aggregate;
pub mod fused;
pub mod group;
pub mod join;
pub mod multiplex;
pub mod reference;
pub mod select;
pub mod semijoin;
pub mod setops;
pub mod sort;
pub mod unique;

pub use aggregate::{aggr_scalar, set_aggregate, AggFunc};
pub use group::{group1, group2};
pub use join::{join, join_partitioned, join_theta};
pub use multiplex::{apply_scalar, multiplex, MultArg, ScalarFunc};
pub use select::{select_eq, select_range};
pub use semijoin::{antijoin, semijoin};
pub use setops::{concat_bats, diff_pairs, intersect_pairs, union_pairs, zip};
pub use sort::{mark, sort_head, sort_tail, topn};
pub use unique::unique;

use crate::atom::AtomType;
use crate::ctx::ExecCtx;
use crate::error::{MonetError, Result};

/// Threads an operator over a `rows`-row operand should fan out to —
/// [`crate::costmodel::par_threads`] gated on the context: with a pager
/// installed the kernels stay serial, because the simulated fault trace is
/// defined by sequential access order.
pub(crate) fn par_threads(ctx: &ExecCtx, rows: usize) -> usize {
    if ctx.pager.is_some() {
        1
    } else {
        crate::costmodel::par_threads(rows)
    }
}

/// Check that two columns can be compared for a join (same type; oid and
/// void interoperate).
pub(crate) fn check_comparable(op: &'static str, left: AtomType, right: AtomType) -> Result<()> {
    let ok = left == right
        || matches!(
            (left, right),
            (AtomType::Oid, AtomType::Void) | (AtomType::Void, AtomType::Oid)
        );
    if ok {
        Ok(())
    } else {
        Err(MonetError::IncompatibleColumns { op, left, right })
    }
}
