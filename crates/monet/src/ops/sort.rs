//! Ordering operators: `sort` (on head or tail), `topn`, and `mark`.
//!
//! Sorting is how the load pipeline of Section 6 prepares attribute BATs
//! ("we then reordered all tables on tail values") and how datavectors come
//! to be (Figure 7: project, then sort on tail). `topn` serves the TPC-D
//! top-k reports (Q3's top-10 orders, Q10's top-20 customers); `mark`
//! assigns fresh dense oids to a result set.

use std::time::Instant;

use crate::atom::Oid;
use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::Result;
use crate::pager;
use crate::props::{ColProps, Props};

/// Reorder the BAT ascending on tail values (stable).
pub fn sort_tail(ctx: &ExecCtx, ab: &Bat) -> Result<Bat> {
    let started = Instant::now();
    let faults0 = ctx.faults();
    if ab.props().tail.sorted {
        let r = ab.clone();
        ctx.record("sort", "noop", started, faults0, &r);
        return Ok(r);
    }
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.head());
        pager::touch_scan(p, ab.tail());
    }
    let perm = ab.tail().sort_perm();
    let p = ab.props();
    let result = Bat::with_props(
        ab.head().gather(&perm),
        ab.tail().gather(&perm),
        Props::new(
            ColProps { sorted: false, key: p.head.key, dense: false },
            ColProps { sorted: true, key: p.tail.key, dense: false },
        ),
    );
    ctx.record("sort", "tail", started, faults0, &result);
    Ok(result)
}

/// Reorder the BAT ascending on head values (stable).
pub fn sort_head(ctx: &ExecCtx, ab: &Bat) -> Result<Bat> {
    Ok(sort_tail(ctx, &ab.mirror())?.mirror())
}

/// The `n` BUNs with the largest (`descending`) or smallest tails, in that
/// order. Ties broken by operand position (stable).
pub fn topn(ctx: &ExecCtx, ab: &Bat, n: usize, descending: bool) -> Result<Bat> {
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let mut perm = ab.tail().sort_perm();
    if descending {
        perm.reverse();
    }
    perm.truncate(n);
    if let Some(p) = ctx.pager.as_deref() {
        for &i in &perm {
            pager::touch_fetch(p, ab.head(), i as usize);
        }
    }
    let p = ab.props();
    let result = Bat::with_props(
        ab.head().gather(&perm),
        ab.tail().gather(&perm),
        Props::new(
            ColProps { sorted: false, key: p.head.key, dense: false },
            ColProps { sorted: !descending, key: p.tail.key, dense: false },
        ),
    );
    ctx.record("topn", if descending { "desc" } else { "asc" }, started, faults0, &result);
    Ok(result)
}

/// `mark`: replace the tail with a fresh dense oid sequence, one per BUN.
/// The head column is shared, so the result is synced with the operand.
pub fn mark(ctx: &ExecCtx, ab: &Bat, base: Option<Oid>) -> Result<Bat> {
    let started = Instant::now();
    let faults0 = ctx.faults();
    let seq = base.unwrap_or_else(|| ctx.fresh_oids(ab.len()));
    let result = Bat::with_props(
        ab.head().clone(),
        Column::void(seq, ab.len()),
        Props::new(ab.props().head, ColProps::DENSE),
    );
    ctx.record("mark", "void", started, faults0, &result);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unsorted() -> Bat {
        Bat::new(Column::from_oids(vec![1, 2, 3, 4]), Column::from_ints(vec![30, 10, 40, 20]))
    }

    #[test]
    fn sort_tail_orders_and_flags() {
        let ctx = ExecCtx::new();
        let r = sort_tail(&ctx, &unsorted()).unwrap();
        assert_eq!(r.tail().as_int_slice().unwrap(), &[10, 20, 30, 40]);
        assert_eq!(r.head().as_oid_slice().unwrap(), &[2, 4, 1, 3]);
        assert!(r.props().tail.sorted);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn sort_noop_when_already_sorted() {
        let ctx = ExecCtx::new().with_trace();
        let b =
            Bat::with_inferred_props(Column::from_oids(vec![1, 2]), Column::from_ints(vec![1, 2]));
        let _ = sort_tail(&ctx, &b).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "noop");
    }

    #[test]
    fn sort_head_via_mirror() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![3, 1, 2]), Column::from_ints(vec![30, 10, 20]));
        let r = sort_head(&ctx, &b).unwrap();
        assert_eq!(r.head().as_oid_slice().unwrap(), &[1, 2, 3]);
        assert_eq!(r.tail().as_int_slice().unwrap(), &[10, 20, 30]);
        assert!(r.props().head.sorted);
    }

    #[test]
    fn topn_desc() {
        let ctx = ExecCtx::new();
        let r = topn(&ctx, &unsorted(), 2, true).unwrap();
        assert_eq!(r.tail().as_int_slice().unwrap(), &[40, 30]);
        assert_eq!(r.head().as_oid_slice().unwrap(), &[3, 1]);
    }

    #[test]
    fn topn_asc_and_overlong() {
        let ctx = ExecCtx::new();
        let r = topn(&ctx, &unsorted(), 99, false).unwrap();
        assert_eq!(r.len(), 4);
        assert!(r.props().tail.sorted);
    }

    #[test]
    fn mark_is_synced_and_dense() {
        let ctx = ExecCtx::new();
        let b = unsorted();
        let r = mark(&ctx, &b, None).unwrap();
        assert!(r.synced(&b));
        assert!(r.props().tail.dense);
        assert_eq!(r.tail().oid_at(1), r.tail().oid_at(0) + 1);
        let r2 = mark(&ctx, &b, Some(500)).unwrap();
        assert_eq!(r2.tail().oid_at(0), 500);
    }
}
