//! Ordering operators: `sort` (on head or tail), `topn`, and `mark`.
//!
//! Sorting is how the load pipeline of Section 6 prepares attribute BATs
//! ("we then reordered all tables on tail values") and how datavectors come
//! to be (Figure 7: project, then sort on tail). `topn` serves the TPC-D
//! top-k reports (Q3's top-10 orders, Q10's top-20 customers); `mark`
//! assigns fresh dense oids to a result set.

use std::time::Instant;

use crate::atom::Oid;
use crate::bat::Bat;
use crate::column::Column;
use crate::ctx::ExecCtx;
use crate::error::Result;
use crate::pager;
use crate::props::{ColProps, Props};

/// Reorder the BAT ascending on tail values (stable).
pub fn sort_tail(ctx: &ExecCtx, ab: &Bat) -> Result<Bat> {
    ctx.probe("op/sort")?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    if ab.props().tail.sorted {
        let r = ab.clone();
        ctx.record("sort", "noop", started, faults0, &r)?;
        return Ok(r);
    }
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.head());
        pager::touch_scan(p, ab.tail());
    }
    // Typed direct sort: the (value, position) pairs are sorted on the
    // primitive slice and already yield the sorted tail — only the head
    // needs a gather.
    let (tail, perm) = ab.tail().sort_direct();
    let p = ab.props();
    let result = Bat::with_props(
        ab.head().gather(&perm),
        tail,
        Props::new(
            ColProps { sorted: false, key: p.head.key, dense: false, ..ColProps::NONE },
            ColProps { sorted: true, key: p.tail.key, dense: false, ..ColProps::NONE },
        ),
    );
    ctx.record("sort", "tail", started, faults0, &result)?;
    Ok(result)
}

/// Reorder the BAT ascending on head values (stable).
pub fn sort_head(ctx: &ExecCtx, ab: &Bat) -> Result<Bat> {
    Ok(sort_tail(ctx, &ab.mirror())?.mirror())
}

/// Positions of the `n` extreme tails, already in output order. The rank
/// order — value ascending or descending, then operand position ascending —
/// is a *strict* total order, so selection is deterministic and ties come
/// out in operand order either direction (the old `sort_perm` +
/// `perm.reverse()` path reversed equal-value runs). O(len log n) via a
/// bounded heap rooted at the worst kept row; a later equal value never
/// outranks a kept one, so stability falls out of the scan order.
fn topn_perm<V: crate::typed::TypedVals>(t: V, n: usize, descending: bool) -> Vec<u32> {
    use std::cmp::Ordering::{Greater, Less};
    let len = t.len();
    // `outranks(a, b)`: row `a` precedes row `b` in the output.
    let outranks = |a: u32, b: u32| -> bool {
        let c = t.cmp_one(t.value(a as usize), t.value(b as usize));
        match if descending { c.reverse() } else { c } {
            Less => true,
            Greater => false,
            _ => a < b,
        }
    };
    let rank = |&a: &u32, &b: &u32| if outranks(a, b) { Less } else { Greater };
    if n == 0 {
        return Vec::new();
    }
    if n >= len {
        let mut idx: Vec<u32> = (0..len as u32).collect();
        idx.sort_unstable_by(rank);
        return idx;
    }
    let worse = |a: u32, b: u32| outranks(b, a);
    // `heap[0]` is the worst row currently kept.
    let mut heap: Vec<u32> = Vec::with_capacity(n);
    for i in 0..len as u32 {
        if heap.len() < n {
            heap.push(i);
            let mut c = heap.len() - 1;
            while c > 0 && worse(heap[c], heap[(c - 1) / 2]) {
                heap.swap(c, (c - 1) / 2);
                c = (c - 1) / 2;
            }
        } else if outranks(i, heap[0]) {
            heap[0] = i;
            let mut p = 0usize;
            loop {
                let (l, r) = (2 * p + 1, 2 * p + 2);
                let mut m = p;
                if l < n && worse(heap[l], heap[m]) {
                    m = l;
                }
                if r < n && worse(heap[r], heap[m]) {
                    m = r;
                }
                if m == p {
                    break;
                }
                heap.swap(p, m);
                p = m;
            }
        }
    }
    heap.sort_unstable_by(rank);
    heap
}

/// The `n` BUNs with the largest (`descending`) or smallest tails, in that
/// order. Ties broken by operand position (stable).
pub fn topn(ctx: &ExecCtx, ab: &Bat, n: usize, descending: bool) -> Result<Bat> {
    ctx.probe("op/topn")?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    if let Some(p) = ctx.pager.as_deref() {
        pager::touch_scan(p, ab.tail());
    }
    let perm = crate::for_each_typed!(ab.tail(), |t| topn_perm(t, n, descending));
    if let Some(p) = ctx.pager.as_deref() {
        // The result gathers *both* columns at the kept positions; fetch
        // accounting must cover the tail too (as `sort_tail` scans both).
        for &i in &perm {
            pager::touch_fetch(p, ab.head(), i as usize);
            pager::touch_fetch(p, ab.tail(), i as usize);
        }
    }
    let p = ab.props();
    let result = Bat::with_props(
        ab.head().gather(&perm),
        ab.tail().gather(&perm),
        Props::new(
            ColProps { sorted: false, key: p.head.key, dense: false, ..ColProps::NONE },
            ColProps { sorted: !descending, key: p.tail.key, dense: false, ..ColProps::NONE },
        ),
    );
    ctx.record("topn", if descending { "desc" } else { "asc" }, started, faults0, &result)?;
    Ok(result)
}

/// `mark`: replace the tail with a fresh dense oid sequence, one per BUN.
/// The head column is shared, so the result is synced with the operand.
pub fn mark(ctx: &ExecCtx, ab: &Bat, base: Option<Oid>) -> Result<Bat> {
    ctx.probe("op/mark")?;
    let started = Instant::now();
    let faults0 = ctx.faults();
    let seq = base.unwrap_or_else(|| ctx.fresh_oids(ab.len()));
    let result = Bat::with_props(
        ab.head().clone(),
        Column::void(seq, ab.len()),
        Props::new(ab.props().head, ColProps::DENSE),
    );
    ctx.record("mark", "void", started, faults0, &result)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unsorted() -> Bat {
        Bat::new(Column::from_oids(vec![1, 2, 3, 4]), Column::from_ints(vec![30, 10, 40, 20]))
    }

    #[test]
    fn sort_tail_orders_and_flags() {
        let ctx = ExecCtx::new();
        let r = sort_tail(&ctx, &unsorted()).unwrap();
        assert_eq!(r.tail().as_int_slice().unwrap(), &[10, 20, 30, 40]);
        assert_eq!(r.head().as_oid_slice().unwrap(), &[2, 4, 1, 3]);
        assert!(r.props().tail.sorted);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn sort_noop_when_already_sorted() {
        let ctx = ExecCtx::new().with_trace();
        let b =
            Bat::with_inferred_props(Column::from_oids(vec![1, 2]), Column::from_ints(vec![1, 2]));
        let _ = sort_tail(&ctx, &b).unwrap();
        assert_eq!(ctx.take_trace()[0].algo, "noop");
    }

    #[test]
    fn sort_head_via_mirror() {
        let ctx = ExecCtx::new();
        let b = Bat::new(Column::from_oids(vec![3, 1, 2]), Column::from_ints(vec![30, 10, 20]));
        let r = sort_head(&ctx, &b).unwrap();
        assert_eq!(r.head().as_oid_slice().unwrap(), &[1, 2, 3]);
        assert_eq!(r.tail().as_int_slice().unwrap(), &[10, 20, 30]);
        assert!(r.props().head.sorted);
    }

    #[test]
    fn topn_desc() {
        let ctx = ExecCtx::new();
        let r = topn(&ctx, &unsorted(), 2, true).unwrap();
        assert_eq!(r.tail().as_int_slice().unwrap(), &[40, 30]);
        assert_eq!(r.head().as_oid_slice().unwrap(), &[3, 1]);
    }

    #[test]
    fn topn_desc_ties_keep_operand_order() {
        // Regression: the old `sort_perm()` + `perm.reverse()` path also
        // reversed equal-value runs, emitting Q3/Q10-style top-k ties in
        // reverse operand order. Duplicate tails must keep head order.
        let ctx = ExecCtx::new();
        let b = Bat::new(
            Column::from_oids(vec![1, 2, 3, 4, 5, 6]),
            Column::from_ints(vec![40, 70, 40, 70, 70, 10]),
        );
        let r = topn(&ctx, &b, 4, true).unwrap();
        assert_eq!(r.tail().as_int_slice().unwrap(), &[70, 70, 70, 40]);
        // Ties at 70: operand positions 2, 4, 5 → heads 2, 4, 5 in order.
        assert_eq!(r.head().as_oid_slice().unwrap(), &[2, 4, 5, 1]);
        // The tie on the cut boundary keeps the earlier operand too.
        let r = topn(&ctx, &b, 2, true).unwrap();
        assert_eq!(r.head().as_oid_slice().unwrap(), &[2, 4]);
        // Ascending ties likewise stay in operand order.
        let r = topn(&ctx, &b, 3, false).unwrap();
        assert_eq!(r.tail().as_int_slice().unwrap(), &[10, 40, 40]);
        assert_eq!(r.head().as_oid_slice().unwrap(), &[6, 1, 3]);
    }

    #[test]
    fn topn_accounts_fetches_of_both_columns() {
        // Regression: the pager trace only counted head fetches, though the
        // result gathers the tail at the same positions.
        use crate::pager::Pager;
        let ctx = ExecCtx::new().with_pager(std::sync::Arc::new(Pager::new(8)));
        let b =
            Bat::new(Column::from_oids(vec![1, 2, 3, 4]), Column::from_ints(vec![30, 10, 40, 20]));
        let p = ctx.pager.as_deref().unwrap();
        topn(&ctx, &b, 2, true).unwrap();
        // 8-byte pages: the tail scan touches all 4 int pages (2 ints each
        // = 2 pages), the kept fetches touch head pages (8B oids, 1/page)
        // *and* re-touch resident tail pages.
        let head_pages = 2; // kept rows 2 (oid 3) and 0 (oid 1) on distinct pages
        let tail_scan_pages = 2;
        assert_eq!(p.faults(), head_pages + tail_scan_pages);
        // Touches prove the tail fetches are recorded: scan 2 + 2 per kept
        // row (head + tail).
        assert_eq!(p.touches(), tail_scan_pages + 2 * 2);
    }

    #[test]
    fn topn_asc_and_overlong() {
        let ctx = ExecCtx::new();
        let r = topn(&ctx, &unsorted(), 99, false).unwrap();
        assert_eq!(r.len(), 4);
        assert!(r.props().tail.sorted);
    }

    #[test]
    fn mark_is_synced_and_dense() {
        let ctx = ExecCtx::new();
        let b = unsorted();
        let r = mark(&ctx, &b, None).unwrap();
        assert!(r.synced(&b));
        assert!(r.props().tail.dense);
        assert_eq!(r.tail().oid_at(1), r.tail().oid_at(0) + 1);
        let r2 = mark(&ctx, &b, Some(500)).unwrap();
        assert_eq!(r2.tail().oid_at(0), 500);
    }
}
