//! Plan-optimizer pass semantics: each rewrite preserves the executed
//! value stream bit for bit, the passes fire on the shapes the translator
//! actually emits, and the interpreter's trace/liveness accounting refers
//! to the *rewritten* program.

use monet::atom::AtomValue;
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::db::Db;
use monet::mil::opt::{optimize, with_opt_config, with_opt_level, OptLevel};
use monet::mil::{execute, MilArg, MilOp, MilProgram, Pin, Var};
use monet::ops::ScalarFunc;

fn db() -> Db {
    let mut db = Db::new();
    // Attribute-like BAT: unsorted keyed oid head, sorted int tail.
    db.register(
        "attr",
        Bat::with_inferred_props(
            Column::from_oids(vec![14, 11, 13, 10, 12]),
            Column::from_ints(vec![1, 2, 2, 3, 5]),
        ),
    );
    // Reference BAT [oid, oid] (an attribute hop).
    db.register(
        "hop",
        Bat::with_inferred_props(
            Column::from_oids(vec![20, 21, 22, 23]),
            Column::from_oids(vec![11, 13, 13, 99]),
        ),
    );
    // Dense-head value BAT (fetch-join target).
    db.register(
        "dense",
        Bat::with_inferred_props(Column::void(10, 5), Column::from_strs(["a", "b", "c", "d", "e"])),
    );
    // Attribute BAT carrying a datavector (order-changing semijoin path).
    let mut dv_bat = Bat::with_inferred_props(
        Column::from_oids(vec![10, 11, 12, 13, 14]),
        Column::from_dbls(vec![0.1, 0.2, 0.3, 0.4, 0.5]),
    );
    dv_bat.set_datavector(std::sync::Arc::new(
        monet::accel::datavector::Datavector::from_unordered(&dv_bat),
    ));
    db.register("dv_attr", dv_bat);
    db
}

fn rows(b: &Bat) -> Vec<(AtomValue, AtomValue)> {
    b.iter().collect()
}

/// Execute raw and optimized forms of `prog`, asserting the kept roots are
/// bit-identical; returns the optimized program for shape assertions.
fn assert_equivalent(db: &Db, prog: &MilProgram, roots: &[Var]) -> MilProgram {
    // Separate contexts: fresh-oid sequences restart per context, so
    // group/mark oids come out identical for structurally equal plans.
    let raw_env = execute(&ExecCtx::new(), db, prog, roots).expect("raw execution");
    let out = optimize(prog.clone(), roots, db);
    let opt_env = execute(
        &ExecCtx::new(),
        db,
        &out.prog,
        &roots.iter().map(|&r| out.var(r)).collect::<Vec<_>>(),
    )
    .expect("optimized execution");
    for &r in roots {
        let a = raw_env.bat(r).expect("raw root");
        let b = opt_env.bat(out.var(r)).expect("optimized root");
        assert_eq!(rows(a), rows(b), "root {r} differs after optimization");
    }
    out.prog
}

#[test]
fn cse_merges_identical_chains_and_dce_sweeps() {
    let db = db();
    let mut p = MilProgram::new();
    let hop = p.emit("hop", MilOp::Load("hop".into()));
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    // The same hop join emitted twice (predicate + projection walk).
    let j1 = p.emit("j1", MilOp::Join(hop, attr));
    let j2 = p.emit("j2", MilOp::Join(hop, attr));
    let m1 = p.emit("m1", MilOp::Mirror(j1));
    let m2 = p.emit("m2", MilOp::Mirror(j2));
    let opt = assert_equivalent(&db, &p, &[m1, m2]);
    // j2/m2 merged into j1/m1, duplicates removed.
    assert_eq!(opt.len(), 4, "expected load,load,join,mirror; got:\n{opt}");
}

#[test]
fn cse_never_merges_fresh_oid_ops() {
    let db = db();
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let g1 = p.emit("g1", MilOp::Group1(attr));
    let g2 = p.emit("g2", MilOp::Group1(attr));
    let z = p.emit("z", MilOp::Zip(g1, g2));
    let opt = assert_equivalent(&db, &p, &[z]);
    let groups = opt.stmts.iter().filter(|s| matches!(s.op, MilOp::Group1(_))).count();
    assert_eq!(groups, 2, "group draws fresh oids and must not be hash-consed:\n{opt}");
}

#[test]
fn dce_removes_dead_code_and_renumbers() {
    let db = db();
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let _dead = p.emit("dead", MilOp::Mirror(attr));
    let _dead2 = p.emit("dead2", MilOp::Group1(attr)); // dead fresh-oid op goes too
    let sel = p.emit("sel", MilOp::SelectEq(attr, AtomValue::Int(2)));
    let opt = assert_equivalent(&db, &p, &[sel]);
    assert_eq!(opt.len(), 2, "got:\n{opt}");
    // Renumbered: statement i defines variable i.
    for (i, stmt) in opt.stmts.iter().enumerate() {
        assert_eq!(stmt.var, i);
        for v in stmt.op.operands() {
            assert!(v < i);
        }
    }
}

#[test]
fn pushdown_moves_select_below_join() {
    let db = db();
    let mut p = MilProgram::new();
    let hop = p.emit("hop", MilOp::Load("hop".into()));
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let j = p.emit("j", MilOp::Join(hop, attr));
    let sel = p.emit("sel", MilOp::SelectEq(j, AtomValue::Int(2)));
    let opt = assert_equivalent(&db, &p, &[sel]);
    // The final statement is now the join; the select runs on `attr`.
    let last = opt.stmts.last().unwrap();
    assert!(matches!(last.op, MilOp::Join(..)), "got:\n{opt}");
    let selects: Vec<_> =
        opt.stmts.iter().filter(|s| matches!(s.op, MilOp::SelectEq(..))).collect();
    assert_eq!(selects.len(), 1);
    assert!(
        matches!(opt.stmts[selects[0].var].op, MilOp::SelectEq(v, _) if v == attr),
        "select should read the attribute BAT directly:\n{opt}"
    );
}

#[test]
fn pushdown_crosses_semijoin_but_respects_datavectors() {
    let db = db();
    // Plain left operand: select commutes below the semijoin.
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let hop = p.emit("hop", MilOp::Load("hop".into()));
    let hm = p.emit("hm", MilOp::Mirror(hop));
    let sj = p.emit("sj", MilOp::Semijoin(attr, hm));
    let sel = p.emit("sel", MilOp::SelectEq(sj, AtomValue::Int(2)));
    let opt = assert_equivalent(&db, &p, &[sel]);
    assert!(
        matches!(opt.stmts.last().unwrap().op, MilOp::Semijoin(..)),
        "select should have moved below the semijoin:\n{opt}"
    );

    // Datavector-carrying left operand: the rewrite could flip the
    // semijoin onto the right-order datavector path — must not fire.
    let mut p = MilProgram::new();
    let dv = p.emit("dv_attr", MilOp::Load("dv_attr".into()));
    let hop = p.emit("hop", MilOp::Load("hop".into()));
    let hm = p.emit("hm", MilOp::Mirror(hop));
    let sj = p.emit("sj", MilOp::Semijoin(dv, hm));
    let sel = p.emit(
        "sel",
        MilOp::SelectRange {
            src: sj,
            lo: Some(AtomValue::Dbl(0.15)),
            hi: None,
            inc_lo: true,
            inc_hi: true,
        },
    );
    let _ = sel;
    let opt = assert_equivalent(&db, &p, &[sel]);
    assert!(
        matches!(opt.stmts.last().unwrap().op, MilOp::SelectRange { .. }),
        "select must stay above a datavector semijoin:\n{opt}"
    );
}

#[test]
fn saturated_semijoin_folds_to_the_selection() {
    // semijoin(X, select(X, ..)) on a key-headed X is the selection.
    let db = db();
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let sel = p.emit("sel", MilOp::SelectEq(attr, AtomValue::Int(2)));
    let sj = p.emit("sj", MilOp::Semijoin(attr, sel));
    let opt = assert_equivalent(&db, &p, &[sj]);
    assert!(
        !opt.stmts.iter().any(|s| matches!(s.op, MilOp::Semijoin(..))),
        "fragment re-assembly against its own selection should fold:\n{opt}"
    );
}

#[test]
fn redundant_semijoin_against_setagg_folds() {
    // The nest shape: semijoin(class.mirror, {count}(class.mirror)) keeps
    // every BUN — {g} has one BUN per distinct head of its operand.
    let db = db();
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let class = p.emit("class", MilOp::Group1(attr));
    let cm = p.emit("cm", MilOp::Mirror(class));
    let index = p.emit("INDEX", MilOp::SetAgg { f: monet::ops::AggFunc::Count, src: cm });
    let sj = p.emit("sj", MilOp::Semijoin(cm, index));
    let z = p.emit("z", MilOp::Zip(sj, sj));
    let opt = assert_equivalent(&db, &p, &[z, index]);
    assert!(
        !opt.stmts.iter().any(|s| matches!(s.op, MilOp::Semijoin(..))),
        "the INDEX re-restriction should fold away:\n{opt}"
    );
}

#[test]
fn constants_fold_into_multiplexes() {
    // Scalar constants referenced by a multiplex become immediate
    // arguments, and the dead `const` definitions are swept.
    let db = db();
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let one = p.emit("one", MilOp::ConstScalar(AtomValue::Int(1)));
    let m = p.emit(
        "m",
        MilOp::Multiplex { f: ScalarFunc::Mul, args: vec![MilArg::Var(attr), MilArg::Var(one)] },
    );
    let opt = assert_equivalent(&db, &p, &[m]);
    assert_eq!(opt.len(), 2, "got:\n{opt}");
    let MilOp::Multiplex { args, .. } = &opt.stmts[1].op else { panic!("got:\n{opt}") };
    assert!(matches!(args[1], MilArg::Const(AtomValue::Int(1))), "got:\n{opt}");

    // An all-constant multiplex is evaluated at plan time with the same
    // scalar semantics the kernel lifts (the raw form would not even
    // execute — multiplex needs a BAT argument — so this is structural).
    let mut p = MilProgram::new();
    let one = p.emit("one", MilOp::ConstScalar(AtomValue::Int(1)));
    let two = p.emit("two", MilOp::ConstScalar(AtomValue::Int(2)));
    let c = p.emit(
        "c",
        MilOp::Multiplex { f: ScalarFunc::Sub, args: vec![MilArg::Var(one), MilArg::Var(two)] },
    );
    let out = optimize(p, &[c], &db);
    assert_eq!(out.prog.len(), 1, "got:\n{}", out.prog);
    assert!(
        matches!(out.prog.stmts[out.var(c)].op, MilOp::ConstScalar(AtomValue::Int(-1))),
        "got:\n{}",
        out.prog
    );
}

#[test]
fn double_mirror_dissolves() {
    let db = db();
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let m = p.emit("m", MilOp::Mirror(attr));
    let mm = p.emit("mm", MilOp::Mirror(m));
    let sel = p.emit("sel", MilOp::SelectEq(mm, AtomValue::Int(2)));
    let opt = assert_equivalent(&db, &p, &[sel]);
    assert!(!opt.stmts.iter().any(|s| matches!(s.op, MilOp::Mirror(_))), "got:\n{opt}");
}

#[test]
fn pins_match_dynamic_dispatch_choices() {
    let db = db();
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into())); // sorted int tail
    let sel = p.emit("sel", MilOp::SelectEq(attr, AtomValue::Int(2)));
    let hop = p.emit("hop", MilOp::Load("hop".into())); // oid tail
    let dense = p.emit("dense", MilOp::Load("dense".into())); // void head
    let j = p.emit("j", MilOp::Join(hop, dense));
    let _ = (sel, j);
    let out = optimize(p.clone(), &[sel, j], &db);
    let pin_of = |v: Var| out.prog.stmts[out.var(v)].pin;
    assert_eq!(pin_of(sel), Some(Pin::SelectSorted), "got:\n{}", out.prog);
    assert_eq!(pin_of(j), Some(Pin::JoinFetch), "got:\n{}", out.prog);
    // Pinned execution reports the same algorithm the dynamic dispatcher
    // picks, flagged as pinned in the statement trace.
    let ctx = ExecCtx::new().with_trace();
    let roots: Vec<Var> = vec![out.var(sel), out.var(j)];
    let env = execute(&ctx, &db, &out.prog, &roots).unwrap();
    let raw_env = execute(&ctx, &db, &p, &[sel, j]).unwrap();
    let algo_of = |env: &monet::mil::Env, name: &str| {
        env.trace().iter().find(|t| t.name == name).map(|t| (t.algo, t.pinned))
    };
    assert_eq!(algo_of(&env, "sel"), Some(("binary-search", true)));
    assert_eq!(algo_of(&env, "j"), Some(("fetch", true)));
    assert_eq!(algo_of(&raw_env, "sel"), Some(("binary-search", false)));
    assert_eq!(algo_of(&raw_env, "j"), Some(("fetch", false)));
    // Merge pin needs sorted operands and a fetch-impossible (non-oid)
    // join column.
    let mut p2 = MilProgram::new();
    let attr2 = p2.emit("attr", MilOp::Load("attr".into()));
    let am = p2.emit("am", MilOp::Mirror(attr2)); // [int-sorted-head ...]
    let hopm = p2.emit("hopm", MilOp::SortTail(p2.stmts[0].var));
    let jm = p2.emit("jm", MilOp::Join(hopm, am));
    let out2 = optimize(p2, &[jm], &db);
    assert_eq!(out2.prog.stmts[out2.var(jm)].pin, Some(Pin::JoinMerge), "got:\n{}", out2.prog);
}

#[test]
fn dict_tail_pins_select_to_code_path() {
    // A statically dict-encoded tail wins over the sorted pin: selects on
    // it are pinned to the code-comparison path, EXPLAIN shows the pin,
    // and both pinned and dynamic execution report the "dict-code"
    // algorithm with matching results.
    let mut db = Db::new();
    let strs: Vec<String> =
        ["b", "d", "a", "b", "d", "c"].map(|s| format!("Clerk#00000000{s}")).to_vec();
    let tail = Column::from_strs(strs).encode(false);
    assert_eq!(tail.encoding(), monet::props::Enc::Dict);
    db.register("clerk", Bat::with_inferred_props(Column::from_oids((0..6).collect()), tail));

    let mut p = MilProgram::new();
    let clerk = p.emit("clerk", MilOp::Load("clerk".into()));
    let sel = p.emit("sel", MilOp::SelectEq(clerk, AtomValue::str("Clerk#00000000d")));
    let rng = p.emit(
        "rng",
        MilOp::SelectRange {
            src: clerk,
            lo: Some(AtomValue::str("Clerk#00000000a")),
            hi: Some(AtomValue::str("Clerk#00000000c")),
            inc_lo: true,
            inc_hi: true,
        },
    );
    let out = optimize(p.clone(), &[sel, rng], &db);
    for v in [sel, rng] {
        let stmt = &out.prog.stmts[out.var(v)];
        assert_eq!(stmt.pin, Some(Pin::SelectDictCode), "got:\n{}", out.prog);
        assert!(
            monet::mil::render_stmt(&out.prog, stmt).contains("#! dict-code"),
            "EXPLAIN must annotate the pin: {}",
            monet::mil::render_stmt(&out.prog, stmt)
        );
    }
    let ctx = ExecCtx::new().with_trace();
    let roots: Vec<Var> = vec![out.var(sel), out.var(rng)];
    let env = execute(&ctx, &db, &out.prog, &roots).unwrap();
    let raw_env = execute(&ctx, &db, &p, &[sel, rng]).unwrap();
    for (v, name, want_rows) in [(sel, "sel", 2), (rng, "rng", 4)] {
        let pinned = env.bat(out.var(v)).unwrap();
        let raw = raw_env.bat(v).unwrap();
        assert_eq!(rows(pinned), rows(raw), "{name} differs pinned vs dynamic");
        assert_eq!(pinned.len(), want_rows, "{name}");
        let algo = |e: &monet::mil::Env| {
            e.trace().iter().find(|t| t.name == name).map(|t| (t.algo, t.pinned))
        };
        assert_eq!(algo(&env), Some(("dict-code", true)), "{name}");
        assert_eq!(algo(&raw_env), Some(("dict-code", false)), "{name}");
    }
}

#[test]
fn trace_and_live_set_follow_the_rewritten_program() {
    // Satellite regression: after rewrites reorder/remove statements, the
    // StmtTrace rows must describe post-optimization statements and the
    // live-set high-water mark must be recomputed from the *rewritten*
    // last-use table.
    let db = db();
    let mut p = MilProgram::new();
    let hop = p.emit("hop", MilOp::Load("hop".into()));
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let j1 = p.emit("j1", MilOp::Join(hop, attr));
    let _dup = p.emit("dup", MilOp::Join(hop, attr)); // CSE + DCE fodder
    let sel = p.emit("sel", MilOp::SelectEq(j1, AtomValue::Int(2))); // pushdown reorders
    let out = optimize(p, &[sel], &db);
    let root = out.var(sel);
    let ctx = ExecCtx::new();
    let env = execute(&ctx, &db, &out.prog, &[root]).unwrap();

    // One trace row per *rewritten* statement, in order, var == index,
    // rendered against the rewritten operand names.
    assert_eq!(env.trace().len(), out.prog.len());
    for (i, row) in env.trace().iter().enumerate() {
        assert_eq!(row.var, i);
        assert_eq!(row.name, out.prog.stmts[i].name);
        assert_eq!(row.rendered, monet::mil::render_stmt(&out.prog, &out.prog.stmts[i]));
    }

    // Replay the interpreter's liveness accounting against the rewritten
    // last-use table; the recorded peak must match exactly.
    let frees = out.prog.last_uses();
    let sizes: Vec<u64> = env.trace().iter().map(|t| t.result_bytes as u64).collect();
    let mut live = db.bytes() as u64;
    let mut peak = live;
    let mut held: Vec<Option<u64>> = vec![None; out.prog.len()];
    let last = out.prog.len() - 1;
    for i in 0..out.prog.len() {
        live += sizes[i];
        held[i] = Some(sizes[i]);
        peak = peak.max(live);
        for &v in &frees[i] {
            if v == root || v == last {
                continue;
            }
            if let Some(b) = held[v].take() {
                live -= b;
            }
        }
    }
    assert_eq!(ctx.mem.max_live_bytes(), peak, "live-set peak must follow the rewritten plan");
}

#[test]
fn scoped_opt_config_overrides_env() {
    assert_eq!(with_opt_level(OptLevel::Off, OptLevel::current), OptLevel::Off);
    assert_eq!(with_opt_level(OptLevel::Full, OptLevel::current), OptLevel::Full);
    let nested =
        with_opt_level(OptLevel::Off, || with_opt_level(OptLevel::Full, OptLevel::current));
    assert_eq!(nested, OptLevel::Full);
    assert!(with_opt_config(None, Some(true), monet::mil::opt::explain_enabled));
    assert!(!with_opt_config(None, Some(false), monet::mil::opt::explain_enabled));
}

#[test]
fn explain_report_renders_per_pass_deltas() {
    let db = db();
    let mut p = MilProgram::new();
    let hop = p.emit("hop", MilOp::Load("hop".into()));
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let j1 = p.emit("j1", MilOp::Join(hop, attr));
    let _j2 = p.emit("j2", MilOp::Join(hop, attr));
    let m = p.emit("m", MilOp::Mirror(j1));
    let before = p.to_string();
    let out = optimize(p, &[m], &db);
    assert!(out.report.reduction() > 0.0);
    let text = out.report.render(&before, &out.prog.to_string());
    assert!(text.contains("plan optimizer: 5 -> 4 statements"), "got:\n{text}");
    assert!(text.contains("cse"), "got:\n{text}");
    assert!(text.contains("dce"), "got:\n{text}");
    assert!(text.contains("before:"), "got:\n{text}");
    assert!(text.contains("after:"), "got:\n{text}");
}

#[test]
fn cumulative_counters_accumulate_per_thread() {
    let db = db();
    monet::mil::opt::reset_cumulative();
    let mut p = MilProgram::new();
    let hop = p.emit("hop", MilOp::Load("hop".into()));
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let j1 = p.emit("j1", MilOp::Join(hop, attr));
    let _j2 = p.emit("j2", MilOp::Join(hop, attr));
    let m = p.emit("m", MilOp::Mirror(j1));
    let _ = optimize(p.clone(), &[m], &db);
    let _ = optimize(p, &[m], &db);
    let (raw, opt) = monet::mil::opt::cumulative();
    assert_eq!(raw, 10);
    assert_eq!(opt, 8);
}

/// Unsorted-tail measure BAT for fusion tests (a sorted tail would pin
/// its selects to the binary-search path, which never fuses).
fn fuse_db() -> Db {
    let mut db = db();
    db.register(
        "meas",
        Bat::with_inferred_props(
            Column::from_oids(vec![30, 31, 32, 33, 34, 35]),
            Column::from_ints(vec![3, 1, 2, 5, 4, 2]),
        ),
    );
    db
}

#[test]
fn fuse_collapses_map_chain_with_synced_side() {
    let db = fuse_db();
    let mut p = MilProgram::new();
    let meas = p.emit("meas", MilOp::Load("meas".into()));
    // [-](10, meas) -> [*](_, meas): the second map reads the source as a
    // positionally-synced side, the Q13 revenue shape.
    let m1 = p.emit(
        "m1",
        MilOp::Multiplex {
            f: ScalarFunc::Sub,
            args: vec![MilArg::Const(AtomValue::Int(10)), MilArg::Var(meas)],
        },
    );
    let m2 = p.emit(
        "m2",
        MilOp::Multiplex { f: ScalarFunc::Mul, args: vec![MilArg::Var(m1), MilArg::Var(meas)] },
    );
    let opt = assert_equivalent(&db, &p, &[m2]);
    let fused: Vec<_> = opt.stmts.iter().filter(|s| matches!(s.op, MilOp::Fused { .. })).collect();
    assert_eq!(fused.len(), 1, "expected one fused statement:\n{opt}");
    let MilOp::Fused { ref stages, .. } = fused[0].op else { unreachable!() };
    assert_eq!(stages.len(), 2, "got:\n{opt}");
    assert!(
        monet::mil::render_stmt(&opt, fused[0]).contains("#! fused[2]"),
        "EXPLAIN must annotate fusion: {}",
        monet::mil::render_stmt(&opt, fused[0])
    );
}

#[test]
fn fuse_select_map_aggr_terminal_is_scalar_identical() {
    let db = fuse_db();
    let build = || {
        let mut p = MilProgram::new();
        let meas = p.emit("meas", MilOp::Load("meas".into()));
        let sel = p.emit(
            "sel",
            MilOp::SelectRange {
                src: meas,
                lo: Some(AtomValue::Int(2)),
                hi: None,
                inc_lo: true,
                inc_hi: true,
            },
        );
        let m = p.emit(
            "m",
            MilOp::Multiplex {
                f: ScalarFunc::Mul,
                args: vec![MilArg::Var(sel), MilArg::Const(AtomValue::Int(3))],
            },
        );
        let agg = p.emit("agg", MilOp::AggrScalar { f: monet::ops::AggFunc::Max, src: m });
        (p, agg)
    };
    let (p, agg) = build();
    let raw_env = execute(&ExecCtx::new(), &db, &p, &[agg]).expect("raw execution");
    let out = optimize(p, &[agg], &db);
    assert!(
        out.prog
            .stmts
            .iter()
            .any(|s| matches!(&s.op, MilOp::Fused { stages, .. } if stages.len() == 3)),
        "select+map+max should fuse into one statement:\n{}",
        out.prog
    );
    let env = execute(&ExecCtx::new(), &db, &out.prog, &[out.var(agg)]).expect("fused execution");
    assert_eq!(env.scalar(out.var(agg)).unwrap(), raw_env.scalar(agg).unwrap());
}

#[test]
fn fuse_respects_roots_and_reuse() {
    // A chain member that is itself a root (or read twice) must stay
    // materialized; fusion may only swallow single-use interior values.
    let db = fuse_db();
    let mut p = MilProgram::new();
    let meas = p.emit("meas", MilOp::Load("meas".into()));
    let m1 = p.emit(
        "m1",
        MilOp::Multiplex {
            f: ScalarFunc::Sub,
            args: vec![MilArg::Const(AtomValue::Int(10)), MilArg::Var(meas)],
        },
    );
    let m2 = p.emit(
        "m2",
        MilOp::Multiplex { f: ScalarFunc::Mul, args: vec![MilArg::Var(m1), MilArg::Var(meas)] },
    );
    let opt = assert_equivalent(&db, &p, &[m1, m2]);
    assert!(
        !opt.stmts.iter().any(|s| matches!(s.op, MilOp::Fused { .. })),
        "a chain through a kept root must not fuse:\n{opt}"
    );
}

#[test]
fn fuse_skips_sorted_pinned_selects() {
    // `attr` has a sorted int tail: its select pins to binary-search and
    // the chain must not start there.
    let db = fuse_db();
    let mut p = MilProgram::new();
    let attr = p.emit("attr", MilOp::Load("attr".into()));
    let sel = p.emit("sel", MilOp::SelectEq(attr, AtomValue::Int(2)));
    let m = p.emit(
        "m",
        MilOp::Multiplex {
            f: ScalarFunc::Mul,
            args: vec![MilArg::Var(sel), MilArg::Const(AtomValue::Int(3))],
        },
    );
    let opt = assert_equivalent(&db, &p, &[m]);
    assert!(
        !opt.stmts.iter().any(|s| matches!(s.op, MilOp::Fused { .. })),
        "binary-search selects must stay staged:\n{opt}"
    );
}

#[test]
fn fuse_off_reproduces_unfused_emission() {
    let db = fuse_db();
    let mut p = MilProgram::new();
    let meas = p.emit("meas", MilOp::Load("meas".into()));
    let sel = p.emit("sel", MilOp::SelectEq(meas, AtomValue::Int(2)));
    let cnt = p.emit("cnt", MilOp::AggrScalar { f: monet::ops::AggFunc::Count, src: sel });
    let fused = monet::fuse::with_fuse(true, || optimize(p.clone(), &[cnt], &db));
    let unfused = monet::fuse::with_fuse(false, || optimize(p.clone(), &[cnt], &db));
    assert!(
        fused.prog.stmts.iter().any(|s| matches!(s.op, MilOp::Fused { .. })),
        "got:\n{}",
        fused.prog
    );
    assert!(
        !unfused.prog.stmts.iter().any(|s| matches!(s.op, MilOp::Fused { .. })),
        "FLATALG_FUSE=0 must reproduce the unfused emission:\n{}",
        unfused.prog
    );
    let a = execute(&ExecCtx::new(), &db, &fused.prog, &[fused.var(cnt)]).unwrap();
    let b = execute(&ExecCtx::new(), &db, &unfused.prog, &[unfused.var(cnt)]).unwrap();
    assert_eq!(
        a.scalar(fused.var(cnt)).unwrap(),
        b.scalar(unfused.var(cnt)).unwrap(),
        "fused and unfused legs disagree"
    );
}
