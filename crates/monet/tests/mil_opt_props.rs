//! The plan optimizer's props oracle: every `ColProps` the static shape
//! inference ([`monet::mil::opt::infer_shapes`]) predicts for a MIL
//! operation's result must actually hold on the computed column, for
//! every atom type — otherwise the pin pass could commit to an algorithm
//! whose precondition fails at run time.
//!
//! Each case builds a small program over seeded BATs, asks the optimizer
//! for its predictions, executes the raw program, and checks the claimed
//! `sorted`/`key`/`dense` flags against `check_sorted`/`check_key`/
//! `check_dense` scans of the materialized columns (reality, not the
//! run-time descriptor — which may legitimately claim more). Predicted
//! column types must match up to oid/void interchange (a gather of a
//! virtual `void` column materializes as `oid`), which is exactly the
//! precision the fetch-join pin needs.

use monet::atom::{AtomType, AtomValue, Date};
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::db::Db;
use monet::mil::opt::infer_shapes;
use monet::mil::{execute, MilArg, MilOp, MilProgram, Var};
use monet::ops::{AggFunc, ScalarFunc};

/// All nine atom types.
const TYPES: [AtomType; 9] = [
    AtomType::Void,
    AtomType::Oid,
    AtomType::Bool,
    AtomType::Chr,
    AtomType::Int,
    AtomType::Lng,
    AtomType::Dbl,
    AtomType::Str,
    AtomType::Date,
];

/// A deterministic, duplicate-carrying, unsorted value of type `ty` for
/// seed index `i` (void columns are inherently dense — handled apart).
fn value(ty: AtomType, i: u64) -> AtomValue {
    let v = (i * 7 + 3) % 11; // duplicates over 32 rows, unsorted
    match ty {
        AtomType::Void | AtomType::Oid => AtomValue::Oid(100 + v),
        AtomType::Bool => AtomValue::Bool(v % 2 == 0),
        AtomType::Chr => AtomValue::Chr(b'a' + v as u8),
        AtomType::Int => AtomValue::Int(v as i32 * 3),
        AtomType::Lng => AtomValue::Lng(v as i64 * 1_000_000_007),
        AtomType::Dbl => AtomValue::Dbl(v as f64 * 0.75 - 2.0),
        AtomType::Str => AtomValue::str(format!("s{v:02}")),
        AtomType::Date => AtomValue::Date(Date::from_ymd(1994, 1, 1).add_days(v as i32 * 17)),
    }
}

fn col(ty: AtomType, n: usize) -> Column {
    if ty == AtomType::Void {
        return Column::void(50, n);
    }
    Column::from_atoms(ty, (0..n as u64).map(|i| value(ty, i)))
}

fn sorted_col(ty: AtomType, n: usize) -> Column {
    if ty == AtomType::Void {
        return Column::void(50, n);
    }
    let mut vals: Vec<AtomValue> = (0..n as u64).map(|i| value(ty, i)).collect();
    vals.sort_by(|a, b| a.cmp_same_type(b));
    Column::from_atoms(ty, vals)
}

/// Seeded catalog: per tail type, an unsorted attribute-like BAT, a
/// tail-sorted one, a second operand, and a shared-head sibling (synced).
fn db() -> Db {
    let n = 32;
    let mut db = Db::new();
    let shuffled_head = || {
        // Unsorted keyed oid head.
        Column::from_oids((0..n as u64).map(|i| 200 + (i * 13) % n as u64).collect())
    };
    for ty in TYPES {
        let head = shuffled_head();
        db.register(&format!("a_{ty}"), Bat::with_inferred_props(head.clone(), col(ty, n)));
        db.register(
            &format!("sorted_{ty}"),
            Bat::with_inferred_props(Column::from_oids((0..n as u64).collect()), sorted_col(ty, n)),
        );
        db.register(
            &format!("b_{ty}"),
            Bat::with_inferred_props(
                Column::from_oids((0..n as u64).map(|i| 200 + (i * 5) % 40).collect()),
                col(ty, n),
            ),
        );
        // Same head *column* as a_{ty}: runtime-synced with it.
        db.register(&format!("sib_{ty}"), Bat::with_inferred_props(head, col(ty, n)));
        // Duplicate-head grouping input [oid-with-dups, ty].
        db.register(
            &format!("dup_{ty}"),
            Bat::with_inferred_props(
                Column::from_oids((0..n as u64).map(|i| 300 + i % 5).collect()),
                col(ty, n),
            ),
        );
    }
    db
}

/// Execute `prog` and assert that every statically predicted shape holds
/// on the actually computed BAT.
fn check(db: &Db, prog: &MilProgram, what: &str) {
    let shapes = infer_shapes(prog, db);
    let keep: Vec<Var> = (0..prog.len()).collect();
    let ctx = ExecCtx::new();
    let env = execute(&ctx, db, prog, &keep).unwrap_or_else(|e| panic!("{what}: exec failed: {e}"));
    for (v, shape) in shapes.iter().enumerate() {
        let Some(s) = shape else { continue };
        let bat = env.bat(v).unwrap_or_else(|_| panic!("{what}: var {v} should be a BAT"));
        let ty_ok = |pred: Option<AtomType>, actual: AtomType| match pred {
            None => true,
            Some(p) => {
                p == actual
                    || (matches!(p, AtomType::Void | AtomType::Oid)
                        && matches!(actual, AtomType::Void | AtomType::Oid))
            }
        };
        assert!(
            ty_ok(s.head, bat.signature().0) && ty_ok(s.tail, bat.signature().1),
            "{what}: var {v} predicted types {:?}/{:?}, actual {:?}",
            s.head,
            s.tail,
            bat.signature()
        );
        for (side, col, p) in
            [("head", bat.head(), s.props.head), ("tail", bat.tail(), s.props.tail)]
        {
            // The ground truth from full scans of the materialized column;
            // the static claim must sit below it in the soundness order.
            let actual = monet::props::ColProps {
                sorted: col.check_sorted(),
                key: col.check_key(),
                dense: col.check_dense(),
                enc: col.encoding(),
            };
            assert!(
                p.implies(actual),
                "{what}: var {v} {side} predicted {p:?} but the data is {actual:?}"
            );
        }
    }
}

fn load(p: &mut MilProgram, name: &str) -> Var {
    p.emit(name, MilOp::Load(name.to_string()))
}

#[test]
fn unary_op_predictions_hold_for_all_types() {
    let db = db();
    for ty in TYPES {
        for src_name in [format!("a_{ty}"), format!("sorted_{ty}"), format!("dup_{ty}")] {
            let mut p = MilProgram::new();
            let a = load(&mut p, &src_name);
            let m = p.emit("m", MilOp::Mirror(a));
            let _mm = p.emit("mm", MilOp::Mirror(m));
            let _sel = p.emit("sel", MilOp::SelectEq(a, value(ty, 3)));
            let _rng = p.emit(
                "rng",
                MilOp::SelectRange {
                    src: a,
                    lo: Some(value(ty, 1)),
                    hi: None,
                    inc_lo: true,
                    inc_hi: true,
                },
            );
            let _u = p.emit("u", MilOp::Unique(a));
            let _g1 = p.emit("g1", MilOp::Group1(a));
            let _st = p.emit("st", MilOp::SortTail(a));
            let _sh = p.emit("sh", MilOp::SortHead(a));
            let _tn = p.emit("tn", MilOp::TopN { src: a, n: 5, desc: true });
            let _ta = p.emit("ta", MilOp::TopN { src: a, n: 5, desc: false });
            let _mk = p.emit("mk", MilOp::Mark(a));
            let _agg = p.emit("agg", MilOp::SetAgg { f: AggFunc::Count, src: a });
            check(&db, &p, &format!("unary over {src_name}"));
        }
    }
}

#[test]
fn binary_op_predictions_hold_for_all_types() {
    let db = db();
    for ty in TYPES {
        let mut p = MilProgram::new();
        let a = load(&mut p, &format!("a_{ty}"));
        let b = load(&mut p, &format!("b_{ty}"));
        let srt = load(&mut p, &format!("sorted_{ty}"));
        let bm = p.emit("bm", MilOp::Mirror(b));
        // join on tail type `ty` (a's tail against mirrored b's head).
        let _j = p.emit("j", MilOp::Join(a, bm));
        // join with a sorted right head.
        let srtm = p.emit("srtm", MilOp::Mirror(srt));
        let am = p.emit("am", MilOp::Mirror(a));
        let _jm = p.emit("jm", MilOp::Join(am, srt));
        // semijoin/antijoin on heads of type `ty` (mirrored operands).
        let _sj = p.emit("sj", MilOp::Semijoin(am, bm));
        let _aj = p.emit("aj", MilOp::Antijoin(am, bm));
        let _sj2 = p.emit("sj2", MilOp::Semijoin(srtm, bm));
        // pair-set operations on equal signatures.
        let _un = p.emit("un", MilOp::Union(a, b));
        let _df = p.emit("df", MilOp::Diff(a, b));
        let _is = p.emit("is", MilOp::Intersect(a, b));
        let _cc = p.emit("cc", MilOp::Concat(a, b));
        // group refinement over duplicate heads.
        let d = load(&mut p, &format!("dup_{ty}"));
        let g1 = p.emit("g1", MilOp::Group1(d));
        let _g2 = p.emit("g2", MilOp::Group2(g1, d));
        check(&db, &p, &format!("binary over {ty}"));
    }
}

#[test]
fn zip_and_multiplex_predictions_hold() {
    let db = db();
    for ty in TYPES {
        let mut p = MilProgram::new();
        let a = load(&mut p, &format!("a_{ty}"));
        let sib = load(&mut p, &format!("sib_{ty}"));
        // sib shares a's head column: synced at run time.
        let _z = p.emit("z", MilOp::Zip(a, sib));
        let _eq = p.emit(
            "eq",
            MilOp::Multiplex { f: ScalarFunc::Eq, args: vec![MilArg::Var(a), MilArg::Var(sib)] },
        );
        let _eqc = p.emit(
            "eqc",
            MilOp::Multiplex {
                f: ScalarFunc::Eq,
                args: vec![MilArg::Var(a), MilArg::Const(value(ty, 3))],
            },
        );
        check(&db, &p, &format!("zip/multiplex over {ty}"));
    }
    // Numeric multiplex chains (the Q13 revenue shape).
    for ty in [AtomType::Int, AtomType::Lng, AtomType::Dbl] {
        let mut p = MilProgram::new();
        let a = load(&mut p, &format!("a_{ty}"));
        let sib = load(&mut p, &format!("sib_{ty}"));
        let s = p.emit(
            "s",
            MilOp::Multiplex {
                f: ScalarFunc::Sub,
                args: vec![MilArg::Const(value(ty, 9)), MilArg::Var(a)],
            },
        );
        let _m = p.emit(
            "m",
            MilOp::Multiplex { f: ScalarFunc::Mul, args: vec![MilArg::Var(sib), MilArg::Var(s)] },
        );
        check(&db, &p, &format!("numeric multiplex over {ty}"));
    }
}

#[test]
fn predictions_hold_on_optimized_programs_too() {
    // The pin pass annotates the *optimized* program from the same
    // inference; rerun the oracle on post-optimizer output for a chain
    // mixing selects, joins and grouping.
    let db = db();
    for ty in TYPES {
        let mut p = MilProgram::new();
        let srt = load(&mut p, &format!("sorted_{ty}"));
        let sel = p.emit(
            "sel",
            MilOp::SelectRange {
                src: srt,
                lo: Some(value(ty, 1)),
                hi: None,
                inc_lo: true,
                inc_hi: true,
            },
        );
        let b = load(&mut p, &format!("b_{ty}"));
        let selm = p.emit("selm", MilOp::Mirror(sel));
        let j = p.emit("j", MilOp::Join(b, selm));
        let g = p.emit("g", MilOp::Group1(j));
        let gm = p.emit("gm", MilOp::Mirror(g));
        let cnt = p.emit("cnt", MilOp::SetAgg { f: AggFunc::Count, src: gm });
        let out = monet::mil::opt::optimize(p, &[cnt, j], &db);
        check(&db, &out.prog, &format!("optimized chain over {ty}"));
    }
}
