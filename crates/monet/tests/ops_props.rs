//! Randomized property tests of the kernel operators against naive
//! reference implementations on plain `Vec<(oid, int)>` pairs.
//!
//! Deterministic by construction: every test draws from a `StdRng` with a
//! fixed seed, so failures reproduce exactly and the suite never flakes.
//! Complements `tests/kernel_properties.rs` (which checks that the
//! *alternative implementations* of each operator agree with each other):
//! here each operator is checked against an independent model.

use std::collections::{HashMap, HashSet};

use monet::atom::AtomValue;
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 40;
const SEED: u64 = 0x1CDE_1998;

/// Random association list: oids drawn with duplicates, small int alphabet
/// so selections and joins hit plenty of matches.
fn random_pairs(rng: &mut StdRng, max_len: usize) -> Vec<(u64, i32)> {
    let n = rng.gen_range(0..=max_len);
    (0..n).map(|_| (rng.gen_range(0..60u64), rng.gen_range(-25..25i32))).collect()
}

fn bat_of(pairs: &[(u64, i32)]) -> Bat {
    Bat::new(
        Column::from_oids(pairs.iter().map(|p| p.0).collect()),
        Column::from_ints(pairs.iter().map(|p| p.1).collect()),
    )
}

/// The (head, tail) multiset of an `[oid, int]` BAT, in canonical order.
fn pairs_of(b: &Bat) -> Vec<(u64, i32)> {
    let mut v: Vec<(u64, i32)> =
        (0..b.len()).map(|i| (b.head().oid_at(i), b.tail().int_at(i))).collect();
    v.sort_unstable();
    v
}

fn canon(mut pairs: Vec<(u64, i32)>) -> Vec<(u64, i32)> {
    pairs.sort_unstable();
    pairs
}

#[test]
fn select_eq_matches_reference_and_partitions() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        // Reference agreement for an arbitrary probe value.
        let v = rng.gen_range(-25..25i32);
        let got = ops::select_eq(&ctx, &b, &AtomValue::Int(v)).unwrap();
        let expect: Vec<(u64, i32)> = canon(pairs.iter().copied().filter(|p| p.1 == v).collect());
        assert_eq!(pairs_of(&got), expect, "case {case}: select_eq({v})");
        assert!(got.validate().is_ok(), "case {case}: claimed props unsound");
        // Round-trip: selecting every distinct value partitions the BAT.
        let mut distinct: Vec<i32> = pairs.iter().map(|p| p.1).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mut reassembled = Vec::new();
        for v in distinct {
            let part = ops::select_eq(&ctx, &b, &AtomValue::Int(v)).unwrap();
            reassembled.extend(pairs_of(&part));
        }
        assert_eq!(canon(reassembled), canon(pairs), "case {case}: partition");
    }
}

#[test]
fn select_range_matches_reference() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        let lo = rng.gen_range(-30..30i32);
        let hi = rng.gen_range(lo..=30i32);
        let (lo_in, hi_in) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
        let got = ops::select_range(
            &ctx,
            &b,
            Some(&AtomValue::Int(lo)),
            Some(&AtomValue::Int(hi)),
            lo_in,
            hi_in,
        )
        .unwrap();
        let keep = |t: i32| {
            (if lo_in { t >= lo } else { t > lo }) && (if hi_in { t <= hi } else { t < hi })
        };
        let expect: Vec<(u64, i32)> = canon(pairs.iter().copied().filter(|p| keep(p.1)).collect());
        assert_eq!(
            pairs_of(&got),
            expect,
            "case {case}: select_range({lo}{}..{hi}{})",
            if lo_in { "=" } else { "" },
            if hi_in { "=" } else { "" },
        );
        // One-sided ranges degenerate to the same model.
        let ge = ops::select_range(&ctx, &b, Some(&AtomValue::Int(lo)), None, true, true).unwrap();
        let expect_ge: Vec<(u64, i32)> =
            canon(pairs.iter().copied().filter(|p| p.1 >= lo).collect());
        assert_eq!(pairs_of(&ge), expect_ge, "case {case}: select_range({lo}=..)");
    }
}

#[test]
fn join_matches_nested_loop_reference() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        // left: [oid, oid] referencing right's head domain; right: [oid, int].
        let left_pairs: Vec<(u64, u64)> = (0..rng.gen_range(0..60usize))
            .map(|_| (rng.gen_range(0..40u64), rng.gen_range(0..40u64)))
            .collect();
        let right_pairs = random_pairs(&mut rng, 60);
        let left = Bat::new(
            Column::from_oids(left_pairs.iter().map(|p| p.0).collect()),
            Column::from_oids(left_pairs.iter().map(|p| p.1).collect()),
        );
        let right = bat_of(&right_pairs);
        let got = ops::join(&ctx, &left, &right).unwrap();
        // Nested-loop model: match left tail against right head.
        let mut expect: Vec<(u64, i32)> = Vec::new();
        for &(h, t) in &left_pairs {
            for &(h2, t2) in &right_pairs {
                if t == h2 {
                    expect.push((h, t2));
                }
            }
        }
        assert_eq!(pairs_of(&got), canon(expect), "case {case}: join");
        assert!(got.validate().is_ok(), "case {case}: claimed props unsound");
    }
}

#[test]
fn semijoin_antijoin_match_reference_and_partition() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        // Selection BAT: unique oids with void tail, as produced by selects.
        let mut sel_oids: Vec<u64> =
            (0..rng.gen_range(0..30usize)).map(|_| rng.gen_range(0..60u64)).collect();
        sel_oids.sort_unstable();
        sel_oids.dedup();
        let n = sel_oids.len();
        let sel = Bat::with_inferred_props(Column::from_oids(sel_oids.clone()), Column::void(0, n));
        let keep: HashSet<u64> = sel_oids.into_iter().collect();
        let semi = ops::semijoin(&ctx, &b, &sel).unwrap();
        let anti = ops::antijoin(&ctx, &b, &sel).unwrap();
        let expect_semi: Vec<(u64, i32)> =
            canon(pairs.iter().copied().filter(|p| keep.contains(&p.0)).collect());
        let expect_anti: Vec<(u64, i32)> =
            canon(pairs.iter().copied().filter(|p| !keep.contains(&p.0)).collect());
        assert_eq!(pairs_of(&semi), expect_semi, "case {case}: semijoin");
        assert_eq!(pairs_of(&anti), expect_anti, "case {case}: antijoin");
        // Round-trip: the two halves reassemble the operand exactly.
        let mut whole = pairs_of(&semi);
        whole.extend(pairs_of(&anti));
        assert_eq!(canon(whole), canon(pairs), "case {case}: partition");
    }
}

#[test]
fn unique_matches_reference_and_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 4);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        // Small alphabets force plenty of duplicate (head, tail) pairs.
        let n = rng.gen_range(0..80usize);
        let pairs: Vec<(u64, i32)> =
            (0..n).map(|_| (rng.gen_range(0..10u64), rng.gen_range(-4..4i32))).collect();
        let b = bat_of(&pairs);
        let u = ops::unique(&ctx, &b).unwrap();
        let mut expect = canon(pairs.clone());
        expect.dedup();
        assert_eq!(pairs_of(&u), expect, "case {case}: unique");
        let uu = ops::unique(&ctx, &u).unwrap();
        assert_eq!(pairs_of(&uu), pairs_of(&u), "case {case}: idempotence");
        assert!(u.validate().is_ok(), "case {case}: claimed props unsound");
    }
}

#[test]
fn group_assignment_and_counts_match_reference() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 5);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        let g = ops::group1(&ctx, &b).unwrap();
        assert!(g.synced(&b), "case {case}: group result must stay synced");
        // Two rows share a group oid iff they share a tail value.
        let mut group_value: HashMap<u64, i32> = HashMap::new();
        let mut value_group: HashMap<i32, u64> = HashMap::new();
        for i in 0..b.len() {
            let gid = g.tail().oid_at(i);
            let val = b.tail().int_at(i);
            assert_eq!(
                *group_value.entry(gid).or_insert(val),
                val,
                "case {case}: group {gid} spans values"
            );
            assert_eq!(
                *value_group.entry(val).or_insert(gid),
                gid,
                "case {case}: value {val} split across groups"
            );
        }
        // Per-group counts match the value histogram.
        let mut histogram: HashMap<i32, i64> = HashMap::new();
        for &(_, v) in &pairs {
            *histogram.entry(v).or_insert(0) += 1;
        }
        let counts = ops::set_aggregate(&ctx, ops::AggFunc::Count, &g.mirror()).unwrap();
        assert_eq!(counts.len(), histogram.len(), "case {case}: group count");
        for i in 0..counts.len() {
            let gid = counts.head().oid_at(i);
            let cnt = counts.tail().lng_at(i);
            let val = group_value[&gid];
            assert_eq!(cnt, histogram[&val], "case {case}: count of value {val}");
        }
    }
}

#[test]
fn sort_tail_is_an_ordered_permutation() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 6);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        let s = ops::sort_tail(&ctx, &b).unwrap();
        assert_eq!(pairs_of(&s), canon(pairs), "case {case}: sort permutes");
        for i in 1..s.len() {
            assert!(
                s.tail().int_at(i - 1) <= s.tail().int_at(i),
                "case {case}: tail not ordered at {i}"
            );
        }
        assert!(s.validate().is_ok(), "case {case}: claimed props unsound");
    }
}
