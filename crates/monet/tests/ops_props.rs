//! Randomized property tests of the kernel operators against naive
//! reference implementations on plain `Vec<(oid, int)>` pairs.
//!
//! Deterministic by construction: every test draws from a `StdRng` with a
//! fixed seed, so failures reproduce exactly and the suite never flakes.
//! Complements `tests/kernel_properties.rs` (which checks that the
//! *alternative implementations* of each operator agree with each other):
//! here each operator is checked against an independent model.
//!
//! The second half of the file is the **specialized-vs-generic** suite: the
//! monomorphized typed kernels (`monet::typed`) are compared against the
//! row-wise generic reference implementations (`monet::ops::reference`) on
//! random inputs across *every* atom type — including `void`, `str`, and
//! sliced/offset column windows.

use std::collections::{HashMap, HashSet};

use monet::atom::AtomValue;
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 40;
const SEED: u64 = 0x1CDE_1998;

/// Random association list: oids drawn with duplicates, small int alphabet
/// so selections and joins hit plenty of matches.
fn random_pairs(rng: &mut StdRng, max_len: usize) -> Vec<(u64, i32)> {
    let n = rng.gen_range(0..=max_len);
    (0..n).map(|_| (rng.gen_range(0..60u64), rng.gen_range(-25..25i32))).collect()
}

fn bat_of(pairs: &[(u64, i32)]) -> Bat {
    Bat::new(
        Column::from_oids(pairs.iter().map(|p| p.0).collect()),
        Column::from_ints(pairs.iter().map(|p| p.1).collect()),
    )
}

/// The (head, tail) multiset of an `[oid, int]` BAT, in canonical order.
fn pairs_of(b: &Bat) -> Vec<(u64, i32)> {
    let mut v: Vec<(u64, i32)> =
        (0..b.len()).map(|i| (b.head().oid_at(i), b.tail().int_at(i))).collect();
    v.sort_unstable();
    v
}

fn canon(mut pairs: Vec<(u64, i32)>) -> Vec<(u64, i32)> {
    pairs.sort_unstable();
    pairs
}

#[test]
fn select_eq_matches_reference_and_partitions() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        // Reference agreement for an arbitrary probe value.
        let v = rng.gen_range(-25..25i32);
        let got = ops::select_eq(&ctx, &b, &AtomValue::Int(v)).unwrap();
        let expect: Vec<(u64, i32)> = canon(pairs.iter().copied().filter(|p| p.1 == v).collect());
        assert_eq!(pairs_of(&got), expect, "case {case}: select_eq({v})");
        assert!(got.validate().is_ok(), "case {case}: claimed props unsound");
        // Round-trip: selecting every distinct value partitions the BAT.
        let mut distinct: Vec<i32> = pairs.iter().map(|p| p.1).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mut reassembled = Vec::new();
        for v in distinct {
            let part = ops::select_eq(&ctx, &b, &AtomValue::Int(v)).unwrap();
            reassembled.extend(pairs_of(&part));
        }
        assert_eq!(canon(reassembled), canon(pairs), "case {case}: partition");
    }
}

#[test]
fn select_range_matches_reference() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        let lo = rng.gen_range(-30..30i32);
        let hi = rng.gen_range(lo..=30i32);
        let (lo_in, hi_in) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
        let got = ops::select_range(
            &ctx,
            &b,
            Some(&AtomValue::Int(lo)),
            Some(&AtomValue::Int(hi)),
            lo_in,
            hi_in,
        )
        .unwrap();
        let keep = |t: i32| {
            (if lo_in { t >= lo } else { t > lo }) && (if hi_in { t <= hi } else { t < hi })
        };
        let expect: Vec<(u64, i32)> = canon(pairs.iter().copied().filter(|p| keep(p.1)).collect());
        assert_eq!(
            pairs_of(&got),
            expect,
            "case {case}: select_range({lo}{}..{hi}{})",
            if lo_in { "=" } else { "" },
            if hi_in { "=" } else { "" },
        );
        // One-sided ranges degenerate to the same model.
        let ge = ops::select_range(&ctx, &b, Some(&AtomValue::Int(lo)), None, true, true).unwrap();
        let expect_ge: Vec<(u64, i32)> =
            canon(pairs.iter().copied().filter(|p| p.1 >= lo).collect());
        assert_eq!(pairs_of(&ge), expect_ge, "case {case}: select_range({lo}=..)");
    }
}

#[test]
fn join_matches_nested_loop_reference() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        // left: [oid, oid] referencing right's head domain; right: [oid, int].
        let left_pairs: Vec<(u64, u64)> = (0..rng.gen_range(0..60usize))
            .map(|_| (rng.gen_range(0..40u64), rng.gen_range(0..40u64)))
            .collect();
        let right_pairs = random_pairs(&mut rng, 60);
        let left = Bat::new(
            Column::from_oids(left_pairs.iter().map(|p| p.0).collect()),
            Column::from_oids(left_pairs.iter().map(|p| p.1).collect()),
        );
        let right = bat_of(&right_pairs);
        let got = ops::join(&ctx, &left, &right).unwrap();
        // Nested-loop model: match left tail against right head.
        let mut expect: Vec<(u64, i32)> = Vec::new();
        for &(h, t) in &left_pairs {
            for &(h2, t2) in &right_pairs {
                if t == h2 {
                    expect.push((h, t2));
                }
            }
        }
        assert_eq!(pairs_of(&got), canon(expect), "case {case}: join");
        assert!(got.validate().is_ok(), "case {case}: claimed props unsound");
    }
}

#[test]
fn semijoin_antijoin_match_reference_and_partition() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        // Selection BAT: unique oids with void tail, as produced by selects.
        let mut sel_oids: Vec<u64> =
            (0..rng.gen_range(0..30usize)).map(|_| rng.gen_range(0..60u64)).collect();
        sel_oids.sort_unstable();
        sel_oids.dedup();
        let n = sel_oids.len();
        let sel = Bat::with_inferred_props(Column::from_oids(sel_oids.clone()), Column::void(0, n));
        let keep: HashSet<u64> = sel_oids.into_iter().collect();
        let semi = ops::semijoin(&ctx, &b, &sel).unwrap();
        let anti = ops::antijoin(&ctx, &b, &sel).unwrap();
        let expect_semi: Vec<(u64, i32)> =
            canon(pairs.iter().copied().filter(|p| keep.contains(&p.0)).collect());
        let expect_anti: Vec<(u64, i32)> =
            canon(pairs.iter().copied().filter(|p| !keep.contains(&p.0)).collect());
        assert_eq!(pairs_of(&semi), expect_semi, "case {case}: semijoin");
        assert_eq!(pairs_of(&anti), expect_anti, "case {case}: antijoin");
        // Round-trip: the two halves reassemble the operand exactly.
        let mut whole = pairs_of(&semi);
        whole.extend(pairs_of(&anti));
        assert_eq!(canon(whole), canon(pairs), "case {case}: partition");
    }
}

#[test]
fn unique_matches_reference_and_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 4);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        // Small alphabets force plenty of duplicate (head, tail) pairs.
        let n = rng.gen_range(0..80usize);
        let pairs: Vec<(u64, i32)> =
            (0..n).map(|_| (rng.gen_range(0..10u64), rng.gen_range(-4..4i32))).collect();
        let b = bat_of(&pairs);
        let u = ops::unique(&ctx, &b).unwrap();
        let mut expect = canon(pairs.clone());
        expect.dedup();
        assert_eq!(pairs_of(&u), expect, "case {case}: unique");
        let uu = ops::unique(&ctx, &u).unwrap();
        assert_eq!(pairs_of(&uu), pairs_of(&u), "case {case}: idempotence");
        assert!(u.validate().is_ok(), "case {case}: claimed props unsound");
    }
}

#[test]
fn group_assignment_and_counts_match_reference() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 5);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        let g = ops::group1(&ctx, &b).unwrap();
        assert!(g.synced(&b), "case {case}: group result must stay synced");
        // Two rows share a group oid iff they share a tail value.
        let mut group_value: HashMap<u64, i32> = HashMap::new();
        let mut value_group: HashMap<i32, u64> = HashMap::new();
        for i in 0..b.len() {
            let gid = g.tail().oid_at(i);
            let val = b.tail().int_at(i);
            assert_eq!(
                *group_value.entry(gid).or_insert(val),
                val,
                "case {case}: group {gid} spans values"
            );
            assert_eq!(
                *value_group.entry(val).or_insert(gid),
                gid,
                "case {case}: value {val} split across groups"
            );
        }
        // Per-group counts match the value histogram.
        let mut histogram: HashMap<i32, i64> = HashMap::new();
        for &(_, v) in &pairs {
            *histogram.entry(v).or_insert(0) += 1;
        }
        let counts = ops::set_aggregate(&ctx, ops::AggFunc::Count, &g.mirror()).unwrap();
        assert_eq!(counts.len(), histogram.len(), "case {case}: group count");
        for i in 0..counts.len() {
            let gid = counts.head().oid_at(i);
            let cnt = counts.tail().lng_at(i);
            let val = group_value[&gid];
            assert_eq!(cnt, histogram[&val], "case {case}: count of value {val}");
        }
    }
}

#[test]
fn sort_tail_is_an_ordered_permutation() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 6);
    let ctx = ExecCtx::new();
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 80);
        let b = bat_of(&pairs);
        let s = ops::sort_tail(&ctx, &b).unwrap();
        assert_eq!(pairs_of(&s), canon(pairs), "case {case}: sort permutes");
        for i in 1..s.len() {
            assert!(
                s.tail().int_at(i - 1) <= s.tail().int_at(i),
                "case {case}: tail not ordered at {i}"
            );
        }
        assert!(s.validate().is_ok(), "case {case}: claimed props unsound");
    }
}

// ======================================================================
// Specialized-vs-generic suite: typed kernels against `ops::reference`.
// ======================================================================

use monet::atom::{AtomType, Date};
use monet::ops::reference;

const ALL_TYPES: &[AtomType] = &[
    AtomType::Void,
    AtomType::Oid,
    AtomType::Bool,
    AtomType::Chr,
    AtomType::Int,
    AtomType::Lng,
    AtomType::Dbl,
    AtomType::Str,
    AtomType::Date,
];

/// A random scalar of `ty` from a small alphabet (so selections and joins
/// hit plenty of matches and duplicates).
fn random_value(rng: &mut StdRng, ty: AtomType) -> AtomValue {
    match ty {
        AtomType::Void | AtomType::Oid => AtomValue::Oid(rng.gen_range(0..24u64)),
        AtomType::Bool => AtomValue::Bool(rng.gen_bool(0.5)),
        AtomType::Chr => AtomValue::Chr(rng.gen_range(b'a'..=b'e')),
        AtomType::Int => AtomValue::Int(rng.gen_range(-8..8i32)),
        AtomType::Lng => AtomValue::Lng(rng.gen_range(-9..9i64)),
        AtomType::Dbl => {
            let vals = [-2.5, -1.0, -0.0, 0.0, 0.5, 1.0, 3.25, 7.5];
            AtomValue::Dbl(vals[rng.gen_range(0..vals.len())])
        }
        AtomType::Str => {
            let vocab = ["", "a", "ab", "b", "ba", "zz", "EUROPE", "ASIA"];
            AtomValue::str(vocab[rng.gen_range(0..vocab.len())])
        }
        AtomType::Date => AtomValue::Date(Date(rng.gen_range(8000..8020i32))),
    }
}

/// A random column of `ty`, optionally presented as an offset window into a
/// larger allocation (exercising `off != 0` in every typed kernel).
fn random_column(rng: &mut StdRng, ty: AtomType, n: usize) -> Column {
    let windowed = rng.gen_bool(0.5);
    let (pre, post) =
        if windowed { (rng.gen_range(0..4usize), rng.gen_range(0..4usize)) } else { (0, 0) };
    let total = n + pre + post;
    let col = if ty == AtomType::Void {
        Column::void(rng.gen_range(0..30u64), total)
    } else {
        Column::from_atoms(ty, (0..total).map(|_| random_value(rng, ty)))
    };
    col.slice(pre, n)
}

/// Exact (head, tail) value sequence — order matters.
fn rows_of(b: &Bat) -> Vec<(AtomValue, AtomValue)> {
    b.iter().collect()
}

/// Canonical first-appearance relabeling of a group-id column.
fn canon_gids(tail: &Column) -> Vec<u64> {
    let mut map: HashMap<u64, u64> = HashMap::new();
    let mut out = Vec::with_capacity(tail.len());
    for i in 0..tail.len() {
        let g = tail.oid_at(i);
        let next = map.len() as u64;
        out.push(*map.entry(g).or_insert(next));
    }
    out
}

#[test]
fn typed_select_matches_generic_across_types() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x10);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..10 {
            let n = rng.gen_range(0..50usize);
            let head = random_column(&mut rng, AtomType::Oid, n);
            let tail = random_column(&mut rng, ty, n);
            let b = Bat::new(head, tail);
            let v = random_value(&mut rng, ty);
            let got = ops::select_eq(&ctx, &b, &v).unwrap();
            assert_eq!(
                rows_of(&got),
                rows_of(&reference::select_eq(&b, &v)),
                "{ty} case {case}: select_eq"
            );
            let (a, c) = (random_value(&mut rng, ty), random_value(&mut rng, ty));
            let (lo, hi) = if a.cmp_same_type(&c).is_le() { (a, c) } else { (c, a) };
            let (il, ih) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
            let got = ops::select_range(&ctx, &b, Some(&lo), Some(&hi), il, ih).unwrap();
            let expect = reference::select_range(&b, Some(&lo), Some(&hi), il, ih);
            assert_eq!(rows_of(&got), rows_of(&expect), "{ty} case {case}: select_range");
            // Sorted operand takes the binary-search path; same window.
            let perm = b.tail().sort_perm();
            let sorted = Bat::with_inferred_props(b.head().gather(&perm), b.tail().gather(&perm));
            let got = ops::select_eq(&ctx, &sorted, &v).unwrap();
            assert_eq!(
                rows_of(&got),
                rows_of(&reference::select_eq(&sorted, &v)),
                "{ty} case {case}: select_eq sorted"
            );
        }
    }
}

#[test]
fn typed_join_matches_generic_across_types() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x11);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..8 {
            let n = rng.gen_range(0..40usize);
            let m = rng.gen_range(0..40usize);
            let left =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            let right =
                Bat::new(random_column(&mut rng, ty, m), random_column(&mut rng, AtomType::Int, m));
            // Hash path (no props claimed).
            let got = ops::join(&ctx, &left, &right).unwrap();
            assert_eq!(
                rows_of(&got),
                rows_of(&reference::join(&left, &right)),
                "{ty} case {case}: join hash"
            );
            // Merge path: sort left tail and right head.
            let lp = left.tail().sort_perm();
            let ls = Bat::with_inferred_props(left.head().gather(&lp), left.tail().gather(&lp));
            let rp = right.head().sort_perm();
            let rs = Bat::with_inferred_props(right.head().gather(&rp), right.tail().gather(&rp));
            let got = ops::join(&ctx, &ls, &rs).unwrap();
            assert_eq!(
                rows_of(&got),
                rows_of(&reference::join(&ls, &rs)),
                "{ty} case {case}: join merge"
            );
            // Theta joins against both sorted and unsorted right heads.
            if !matches!(ty, AtomType::Void) {
                for theta in [ops::ScalarFunc::Lt, ops::ScalarFunc::Ge, ops::ScalarFunc::Ne] {
                    let got = ops::join_theta(&ctx, &left, &right, theta).unwrap();
                    let expect = reference::join_theta(&left, &right, theta);
                    let mut g = rows_of(&got);
                    let mut e = rows_of(&expect);
                    let key = |p: &(AtomValue, AtomValue)| format!("{}|{}", p.0, p.1);
                    g.sort_by_key(key);
                    e.sort_by_key(key);
                    assert_eq!(g, e, "{ty} case {case}: theta {theta:?}");
                }
            }
        }
    }
    // Fetch path: dense (void) right head.
    for case in 0..8 {
        let n = rng.gen_range(0..40usize);
        let m = rng.gen_range(1..20usize);
        let left = Bat::new(
            random_column(&mut rng, AtomType::Oid, n),
            random_column(&mut rng, AtomType::Oid, n),
        );
        let right = Bat::new(Column::void(5, m), random_column(&mut rng, AtomType::Dbl, m));
        let got = ops::join(&ctx, &left, &right).unwrap();
        assert_eq!(
            rows_of(&got),
            rows_of(&reference::join(&left, &right)),
            "case {case}: join fetch"
        );
    }
}

#[test]
fn typed_semijoin_matches_generic_across_types() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x12);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..8 {
            let n = rng.gen_range(0..50usize);
            let m = rng.gen_range(0..20usize);
            let ab =
                Bat::new(random_column(&mut rng, ty, n), random_column(&mut rng, AtomType::Int, n));
            let cd =
                Bat::new(random_column(&mut rng, ty, m), random_column(&mut rng, AtomType::Oid, m));
            let semi = ops::semijoin(&ctx, &ab, &cd).unwrap();
            let anti = ops::antijoin(&ctx, &ab, &cd).unwrap();
            assert_eq!(
                rows_of(&semi),
                rows_of(&reference::semijoin(&ab, &cd)),
                "{ty} case {case}: semijoin"
            );
            assert_eq!(
                rows_of(&anti),
                rows_of(&reference::antijoin(&ab, &cd)),
                "{ty} case {case}: antijoin"
            );
            // Merge path over sorted heads.
            let ap = ab.head().sort_perm();
            let abs = Bat::with_inferred_props(ab.head().gather(&ap), ab.tail().gather(&ap));
            let cp = cd.head().sort_perm();
            let cds = Bat::with_inferred_props(cd.head().gather(&cp), cd.tail().gather(&cp));
            let semi = ops::semijoin(&ctx, &abs, &cds).unwrap();
            assert_eq!(
                rows_of(&semi),
                rows_of(&reference::semijoin(&abs, &cds)),
                "{ty} case {case}: semijoin merge"
            );
        }
    }
}

#[test]
fn typed_group_matches_generic_across_types() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x13);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..8 {
            let n = rng.gen_range(0..50usize);
            let b =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            let g = ops::group1(&ctx, &b).unwrap();
            assert_eq!(
                canon_gids(g.tail()),
                reference::group1_gids(&b),
                "{ty} case {case}: group1 hash"
            );
            // Merge path over a sorted tail: ids are assigned in value order
            // but partition the rows identically.
            let perm = b.tail().sort_perm();
            let bs = Bat::with_inferred_props(b.head().gather(&perm), b.tail().gather(&perm));
            let gs = ops::group1(&ctx, &bs).unwrap();
            assert_eq!(
                canon_gids(gs.tail()),
                reference::group1_gids(&bs),
                "{ty} case {case}: group1 merge"
            );
        }
    }
    // group2: every tail-type pair, synced heads (key head in cd).
    for &t1 in ALL_TYPES {
        for &t2 in ALL_TYPES {
            let n = rng.gen_range(1..30usize);
            let head = random_column(&mut rng, AtomType::Void, n);
            let ab = Bat::new(head.clone(), random_column(&mut rng, t1, n));
            let cd = Bat::new(head, random_column(&mut rng, t2, n));
            let g = ops::group2(&ctx, &ab, &cd).unwrap();
            let expect = reference::group2_gids(&ab, &cd).unwrap();
            let expect_canon = {
                let mut map: HashMap<u64, u64> = HashMap::new();
                expect
                    .iter()
                    .map(|&g| {
                        let next = map.len() as u64;
                        *map.entry(g).or_insert(next)
                    })
                    .collect::<Vec<u64>>()
            };
            assert_eq!(canon_gids(g.tail()), expect_canon, "group2 ({t1}, {t2})");
        }
    }
}

#[test]
fn typed_unique_matches_generic_across_type_pairs() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x14);
    let ctx = ExecCtx::new();
    for &t1 in ALL_TYPES {
        for &t2 in ALL_TYPES {
            let n = rng.gen_range(0..40usize);
            let b = Bat::new(random_column(&mut rng, t1, n), random_column(&mut rng, t2, n));
            let u = ops::unique(&ctx, &b).unwrap();
            assert_eq!(rows_of(&u), rows_of(&reference::unique(&b)), "unique ({t1}, {t2}) hash");
            // Merge path over a sorted head.
            let perm = b.head().sort_perm();
            let bs = Bat::with_inferred_props(b.head().gather(&perm), b.tail().gather(&perm));
            let us = ops::unique(&ctx, &bs).unwrap();
            assert_eq!(rows_of(&us), rows_of(&reference::unique(&bs)), "unique ({t1}, {t2}) merge");
        }
    }
}

#[test]
fn typed_sort_matches_generic_across_types() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x15);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..8 {
            let n = rng.gen_range(0..50usize);
            let b =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            let s = ops::sort_tail(&ctx, &b).unwrap();
            assert_eq!(
                rows_of(&s),
                rows_of(&reference::sort_tail(&b)),
                "{ty} case {case}: sort_tail"
            );
        }
        // Explicit sliced/offset window: the typed direct sort must respect
        // the view, not the backing allocation.
        let n = 24;
        let head = random_column(&mut rng, AtomType::Oid, n);
        let tail = random_column(&mut rng, ty, n + 9).slice(6, n);
        let b = Bat::new(head, tail);
        let s = ops::sort_tail(&ctx, &b).unwrap();
        assert_eq!(rows_of(&s), rows_of(&reference::sort_tail(&b)), "{ty}: sort_tail windowed");
    }
}

#[test]
fn typed_topn_matches_reference_across_types() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x1A);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..8 {
            let n = rng.gen_range(0..50usize);
            let b =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            // Small alphabets guarantee duplicate tails: the stability of
            // ties (operand order, both directions) is what's under test.
            for descending in [false, true] {
                let k = rng.gen_range(0..n + 3);
                let got = ops::topn(&ctx, &b, k, descending).unwrap();
                assert_eq!(
                    rows_of(&got),
                    rows_of(&reference::topn(&b, k, descending)),
                    "{ty} case {case}: topn({k}, desc={descending})"
                );
            }
        }
    }
}

#[test]
fn partitioned_join_matches_generic_across_types() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x1B);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..8 {
            let n = rng.gen_range(0..40usize);
            let m = rng.gen_range(0..40usize);
            let left =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            let right =
                Bat::new(random_column(&mut rng, ty, m), random_column(&mut rng, AtomType::Int, m));
            // Forced partitioned path (the dispatcher only picks it above
            // the cache threshold); output must be bit-identical to the
            // generic reference, including pair order.
            let got = ops::join_partitioned(&ctx, &left, &right).unwrap();
            assert_eq!(
                rows_of(&got),
                rows_of(&reference::join(&left, &right)),
                "{ty} case {case}: join partitioned"
            );
        }
    }
}

#[test]
fn typed_aggregate_matches_generic_across_types() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x16);
    let ctx = ExecCtx::new();
    let aggs = [
        ops::AggFunc::Count,
        ops::AggFunc::Sum,
        ops::AggFunc::Min,
        ops::AggFunc::Max,
        ops::AggFunc::Avg,
    ];
    for &ty in ALL_TYPES {
        for case in 0..6 {
            let n = rng.gen_range(0..40usize);
            let b =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            for f in aggs {
                let got = ops::set_aggregate(&ctx, f, &b);
                let expect = reference::set_aggregate(f, &b);
                match (got, expect) {
                    (Ok(g), Ok(e)) => {
                        assert_eq!(rows_of(&g), rows_of(&e), "{ty} case {case}: {{{}}}", f.name())
                    }
                    (Err(_), Err(_)) => {}
                    (g, e) => panic!(
                        "{ty} case {case}: {{{}}} disagree on error: {g:?} vs {e:?}",
                        f.name()
                    ),
                }
                let got = ops::aggr_scalar(&ctx, &b, f);
                let expect = reference::aggr_scalar(&b, f);
                match (got, expect) {
                    (Ok(g), Ok(e)) => assert_eq!(g, e, "{ty} case {case}: scalar {}", f.name()),
                    (Err(_), Err(_)) => {}
                    (g, e) => panic!(
                        "{ty} case {case}: scalar {} disagree on error: {g:?} vs {e:?}",
                        f.name()
                    ),
                }
            }
            // Merge path over sorted heads.
            let perm = b.head().sort_perm();
            let bs = Bat::with_inferred_props(b.head().gather(&perm), b.tail().gather(&perm));
            for f in aggs {
                match (ops::set_aggregate(&ctx, f, &bs), reference::set_aggregate(f, &bs)) {
                    (Ok(g), Ok(e)) => assert_eq!(
                        rows_of(&g),
                        rows_of(&e),
                        "{ty} case {case}: sorted {{{}}}",
                        f.name()
                    ),
                    (Err(_), Err(_)) => {}
                    (g, e) => panic!("{ty} case {case}: sorted {{{}}}: {g:?} vs {e:?}", f.name()),
                }
            }
        }
    }
}

#[test]
fn typed_multiplex_matches_generic() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x17);
    let ctx = ExecCtx::new();
    use ops::{MultArg, ScalarFunc as F};
    let value_types = [
        AtomType::Int,
        AtomType::Lng,
        AtomType::Dbl,
        AtomType::Date,
        AtomType::Chr,
        AtomType::Bool,
        AtomType::Str,
    ];
    for case in 0..30 {
        let n = rng.gen_range(0..40usize);
        let head = random_column(&mut rng, AtomType::Oid, n);
        for &ty in &value_types {
            let x = Bat::new(head.clone(), random_column(&mut rng, ty, n));
            let arg2 = if rng.gen_bool(0.4) {
                MultArg::Const(random_value(&mut rng, ty))
            } else {
                MultArg::Bat(Bat::new(head.clone(), random_column(&mut rng, ty, n)))
            };
            let funcs: Vec<F> = match ty {
                AtomType::Int | AtomType::Lng | AtomType::Dbl => {
                    vec![F::Add, F::Sub, F::Mul, F::Div, F::Eq, F::Lt, F::Ge, F::Ne]
                }
                AtomType::Date | AtomType::Chr => vec![F::Eq, F::Ne, F::Lt, F::Le, F::Gt, F::Ge],
                AtomType::Bool => vec![F::And, F::Or, F::Eq, F::Ne],
                _ => vec![F::Eq, F::Ne, F::Lt, F::Gt],
            };
            for f in funcs {
                let args = [MultArg::Bat(x.clone()), arg2.clone()];
                let got = ops::multiplex(&ctx, f, &args);
                let expect = reference::multiplex_synced(f, &args);
                match (got, expect) {
                    (Ok(g), Ok(e)) => {
                        assert_eq!(rows_of(&g), rows_of(&e), "case {case}: [{:?}] over {ty}", f)
                    }
                    (Err(_), Err(_)) => {}
                    (g, e) => {
                        panic!("case {case}: [{f:?}] over {ty} disagree on error: {g:?} vs {e:?}")
                    }
                }
            }
        }
        // Unary shapes.
        let dates = Bat::new(head.clone(), random_column(&mut rng, AtomType::Date, n));
        for f in [F::Year, F::Month] {
            let args = [MultArg::Bat(dates.clone())];
            let g = ops::multiplex(&ctx, f, &args).unwrap();
            let e = reference::multiplex_synced(f, &args).unwrap();
            assert_eq!(rows_of(&g), rows_of(&e), "case {case}: [{f:?}]");
        }
        let bools = Bat::new(head.clone(), random_column(&mut rng, AtomType::Bool, n));
        let args = [MultArg::Bat(bools)];
        assert_eq!(
            rows_of(&ops::multiplex(&ctx, F::Not, &args).unwrap()),
            rows_of(&reference::multiplex_synced(F::Not, &args).unwrap()),
            "case {case}: [not]"
        );
        for ty in [AtomType::Int, AtomType::Lng, AtomType::Dbl] {
            let xs = Bat::new(head.clone(), random_column(&mut rng, ty, n));
            let args = [MultArg::Bat(xs)];
            assert_eq!(
                rows_of(&ops::multiplex(&ctx, F::Neg, &args).unwrap()),
                rows_of(&reference::multiplex_synced(F::Neg, &args).unwrap()),
                "case {case}: [neg] {ty}"
            );
        }
        // Constant-pattern string predicates.
        let strs = Bat::new(head.clone(), random_column(&mut rng, AtomType::Str, n));
        for f in [F::StrPrefix, F::StrContains] {
            let args =
                [MultArg::Bat(strs.clone()), MultArg::Const(random_value(&mut rng, AtomType::Str))];
            assert_eq!(
                rows_of(&ops::multiplex(&ctx, f, &args).unwrap()),
                rows_of(&reference::multiplex_synced(f, &args).unwrap()),
                "case {case}: [{f:?}]"
            );
        }
        // Mixed shapes fall back to the generic path; results must agree.
        let ints = Bat::new(head.clone(), random_column(&mut rng, AtomType::Int, n));
        let args = [MultArg::Bat(ints), MultArg::Const(AtomValue::Dbl(2.5))];
        assert_eq!(
            rows_of(&ops::multiplex(&ctx, F::Mul, &args).unwrap()),
            rows_of(&reference::multiplex_synced(F::Mul, &args).unwrap()),
            "case {case}: mixed [*]"
        );
    }
}

#[test]
fn typed_setops_match_generic() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x18);
    let ctx = ExecCtx::new();
    for &(t1, t2) in &[
        (AtomType::Oid, AtomType::Int),
        (AtomType::Str, AtomType::Str),
        (AtomType::Dbl, AtomType::Chr),
        (AtomType::Date, AtomType::Bool),
    ] {
        for case in 0..10 {
            let n = rng.gen_range(0..30usize);
            let m = rng.gen_range(0..30usize);
            let a = Bat::new(random_column(&mut rng, t1, n), random_column(&mut rng, t2, n));
            let b = Bat::new(random_column(&mut rng, t1, m), random_column(&mut rng, t2, m));
            let u = ops::union_pairs(&ctx, &a, &b).unwrap();
            assert_eq!(
                rows_of(&u),
                rows_of(&reference::union_pairs(&a, &b)),
                "({t1},{t2}) case {case}: union"
            );
            let d = ops::diff_pairs(&ctx, &a, &b).unwrap();
            assert_eq!(
                rows_of(&d),
                rows_of(&reference::diff_pairs(&a, &b)),
                "({t1},{t2}) case {case}: diff"
            );
            let i = ops::intersect_pairs(&ctx, &a, &b).unwrap();
            assert_eq!(
                rows_of(&i),
                rows_of(&reference::intersect_pairs(&a, &b)),
                "({t1},{t2}) case {case}: intersect"
            );
            let c = ops::concat_bats(&ctx, &a, &b).unwrap();
            assert_eq!(
                rows_of(&c),
                rows_of(&reference::concat_bats(&a, &b)),
                "({t1},{t2}) case {case}: concat"
            );
        }
    }
}

// ======================================================================
// Encoded-vs-decoded suite: dict/FOR/RLE tails through every kernel.
// ======================================================================

use monet::props::Enc;

/// Random scalar of `ty` from the alphabets used by [`encoded_pair`]: long
/// duplicated strings so dictionary encoding's size gate engages (the raw
/// heap is not deduplicated), narrow numeric ranges so frame-of-reference
/// always fits a `u8` delta.
fn encodable_value(rng: &mut StdRng, ty: AtomType) -> AtomValue {
    match ty {
        AtomType::Str => AtomValue::str(format!("Clerk#00000000000000000{}", rng.gen_range(0..5))),
        _ => random_value(rng, ty),
    }
}

/// An encoded random column of `ty` plus its raw twin exposing the same
/// values over the same window — possibly an offset slice into a larger
/// allocation, so every typed kernel sees `off != 0` encoded views too.
/// `sorted` sorts the values first and encodes with the RLE gate unlocked.
/// Panics if the fixture fails to encode: the alphabets are sized so the
/// encoders' size gates always pass, and a silently-raw twin would turn
/// the whole suite into a vacuous raw-vs-raw comparison.
fn encoded_pair(rng: &mut StdRng, ty: AtomType, n: usize, sorted: bool) -> (Column, Column) {
    let (pre, post) = if rng.gen_bool(0.5) {
        (rng.gen_range(0..4usize), rng.gen_range(0..4usize))
    } else {
        (0, 0)
    };
    let total = n + pre + post;
    // Sorted fixtures use a 4-value alphabet: at most 4 runs, so the RLE
    // run-count gate (`runs * 4 <= rows`) passes for every n >= 16.
    let mut vals: Vec<AtomValue> = if sorted {
        (0..total)
            .map(|_| {
                let i = rng.gen_range(0..4i32);
                match ty {
                    AtomType::Str => AtomValue::str(format!("Clerk#00000000000000000{i}")),
                    AtomType::Int => AtomValue::Int(i),
                    AtomType::Lng => AtomValue::Lng(i as i64),
                    AtomType::Dbl => AtomValue::Dbl(i as f64),
                    AtomType::Date => AtomValue::Date(Date(8000 + i)),
                    _ => unreachable!("no RLE fixture for {ty}"),
                }
            })
            .collect()
    } else {
        (0..total).map(|_| encodable_value(rng, ty)).collect()
    };
    if sorted {
        vals.sort_by(|a, b| a.cmp_same_type(b));
    }
    let raw = Column::from_atoms(ty, vals.into_iter());
    let enc = raw.encode(sorted);
    let want = if sorted {
        Enc::Rle
    } else if ty == AtomType::Str {
        Enc::Dict
    } else {
        Enc::For
    };
    assert_eq!(enc.encoding(), want, "{ty} sorted={sorted}: fixture must actually encode");
    (enc.slice(pre, n), raw.slice(pre, n))
}

#[test]
fn encoded_tail_matches_raw_across_kernels() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x20);
    let ctx = ExecCtx::new();
    // (type, sorted): dict strings, FOR ints/lngs/dates, RLE runs.
    let legs: &[(AtomType, bool)] = &[
        (AtomType::Str, false),
        (AtomType::Int, false),
        (AtomType::Lng, false),
        (AtomType::Date, false),
        (AtomType::Str, true),
        (AtomType::Int, true),
        (AtomType::Dbl, true),
    ];
    for &(ty, sorted) in legs {
        for case in 0..8 {
            let n = rng.gen_range(24..64usize);
            let head = random_column(&mut rng, AtomType::Oid, n);
            let (et, rt) = encoded_pair(&mut rng, ty, n, sorted);
            let eb = Bat::new(head.clone(), et.clone());
            let rb = Bat::new(head.clone(), rt.clone());
            let tag = format!("{ty} sorted={sorted} case {case}");

            // Selections: point and range, member and non-member probes.
            let v = encodable_value(&mut rng, ty);
            let g = ops::select_eq(&ctx, &eb, &v).unwrap();
            let e = ops::select_eq(&ctx, &rb, &v).unwrap();
            assert_eq!(rows_of(&g), rows_of(&e), "{tag}: select_eq");
            assert!(g.validate().is_ok(), "{tag}: select_eq props unsound");
            let (a, c) = (encodable_value(&mut rng, ty), encodable_value(&mut rng, ty));
            let (lo, hi) = if a.cmp_same_type(&c).is_le() { (a, c) } else { (c, a) };
            let (il, ih) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
            let g = ops::select_range(&ctx, &eb, Some(&lo), Some(&hi), il, ih).unwrap();
            let e = ops::select_range(&ctx, &rb, Some(&lo), Some(&hi), il, ih).unwrap();
            assert_eq!(rows_of(&g), rows_of(&e), "{tag}: select_range");
            let g = ops::select_range(&ctx, &eb, Some(&lo), None, il, true).unwrap();
            let e = ops::select_range(&ctx, &rb, Some(&lo), None, il, true).unwrap();
            assert_eq!(rows_of(&g), rows_of(&e), "{tag}: select_range one-sided");

            // Grouping, uniqueness, ordering.
            let g = ops::group1(&ctx, &eb).unwrap();
            let e = ops::group1(&ctx, &rb).unwrap();
            assert_eq!(canon_gids(g.tail()), canon_gids(e.tail()), "{tag}: group1");
            let g = ops::unique(&ctx, &eb).unwrap();
            let e = ops::unique(&ctx, &rb).unwrap();
            assert_eq!(rows_of(&g), rows_of(&e), "{tag}: unique");
            let g = ops::sort_tail(&ctx, &eb).unwrap();
            let e = ops::sort_tail(&ctx, &rb).unwrap();
            assert_eq!(rows_of(&g), rows_of(&e), "{tag}: sort_tail");
            let k = rng.gen_range(0..n + 2);
            for desc in [false, true] {
                let g = ops::topn(&ctx, &eb, k, desc).unwrap();
                let e = ops::topn(&ctx, &rb, k, desc).unwrap();
                assert_eq!(rows_of(&g), rows_of(&e), "{tag}: topn({k}, desc={desc})");
            }

            // Joins: encoded left tail against an encoded right head, raw
            // twin against the raw twin; pair order must match exactly.
            let m = (n / 2).max(1);
            let rtail = random_column(&mut rng, AtomType::Int, m);
            let g = ops::join(&ctx, &eb, &Bat::new(et.slice(0, m), rtail.clone())).unwrap();
            let e = ops::join(&ctx, &rb, &Bat::new(rt.slice(0, m), rtail.clone())).unwrap();
            assert_eq!(rows_of(&g), rows_of(&e), "{tag}: join");
            let g = ops::semijoin(
                &ctx,
                &Bat::new(et.clone(), head.clone()),
                &Bat::new(et.slice(0, m), rtail.clone()),
            )
            .unwrap();
            let e = ops::semijoin(
                &ctx,
                &Bat::new(rt.clone(), head.clone()),
                &Bat::new(rt.slice(0, m), rtail.clone()),
            )
            .unwrap();
            assert_eq!(rows_of(&g), rows_of(&e), "{tag}: semijoin encoded heads");

            // Aggregates: both shapes must agree value-for-value, including
            // on which inputs are type errors.
            for f in [ops::AggFunc::Count, ops::AggFunc::Sum, ops::AggFunc::Min, ops::AggFunc::Avg]
            {
                match (ops::set_aggregate(&ctx, f, &eb), ops::set_aggregate(&ctx, f, &rb)) {
                    (Ok(g), Ok(e)) => {
                        assert_eq!(rows_of(&g), rows_of(&e), "{tag}: {{{}}}", f.name())
                    }
                    (Err(_), Err(_)) => {}
                    (g, e) => panic!("{tag}: {{{}}} disagree on error: {g:?} vs {e:?}", f.name()),
                }
                match (ops::aggr_scalar(&ctx, &eb, f), ops::aggr_scalar(&ctx, &rb, f)) {
                    (Ok(g), Ok(e)) => assert_eq!(g, e, "{tag}: scalar {}", f.name()),
                    (Err(_), Err(_)) => {}
                    (g, e) => {
                        panic!("{tag}: scalar {} disagree on error: {g:?} vs {e:?}", f.name())
                    }
                }
            }
        }
    }
}

#[test]
fn encoded_multiplex_matches_raw() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x21);
    let ctx = ExecCtx::new();
    use ops::{MultArg, ScalarFunc as F};
    for case in 0..12 {
        let n = rng.gen_range(24..64usize);
        let head = random_column(&mut rng, AtomType::Oid, n);
        // FOR-encoded ints through the arithmetic fast paths.
        let (et, rt) = encoded_pair(&mut rng, AtomType::Int, n, false);
        let k = MultArg::Const(AtomValue::Int(rng.gen_range(-8..8)));
        for f in [F::Add, F::Mul, F::Eq, F::Lt] {
            let g = ops::multiplex(
                &ctx,
                f,
                &[MultArg::Bat(Bat::new(head.clone(), et.clone())), k.clone()],
            );
            let e = ops::multiplex(
                &ctx,
                f,
                &[MultArg::Bat(Bat::new(head.clone(), rt.clone())), k.clone()],
            );
            assert_eq!(
                rows_of(&g.unwrap()),
                rows_of(&e.unwrap()),
                "case {case}: [{f:?}] over FOR int"
            );
        }
        // Dict strings through the per-dictionary-entry predicate path.
        let (et, rt) = encoded_pair(&mut rng, AtomType::Str, n, false);
        for (f, pat) in
            [(F::StrPrefix, "Clerk#"), (F::StrContains, "0000002"), (F::StrPrefix, "zz")]
        {
            let p = MultArg::Const(AtomValue::str(pat));
            let g = ops::multiplex(
                &ctx,
                f,
                &[MultArg::Bat(Bat::new(head.clone(), et.clone())), p.clone()],
            );
            let e = ops::multiplex(
                &ctx,
                f,
                &[MultArg::Bat(Bat::new(head.clone(), rt.clone())), p.clone()],
            );
            assert_eq!(
                rows_of(&g.unwrap()),
                rows_of(&e.unwrap()),
                "case {case}: [{f:?}({pat})] over dict str"
            );
        }
    }
}

#[test]
fn typed_hashindex_finds_all_positions() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x19);
    for &ty in ALL_TYPES {
        for _ in 0..6 {
            let n = rng.gen_range(0..40usize);
            let col = random_column(&mut rng, ty, n);
            let idx = monet::accel::hash::HashIndex::build(&col);
            for probe in 0..n {
                let mut hits: Vec<usize> = idx
                    .candidates(col.hash_at(probe))
                    .filter(|&p| col.eq_at(p, &col, probe))
                    .collect();
                hits.sort_unstable();
                let expect: Vec<usize> = (0..n).filter(|&p| col.eq_at(p, &col, probe)).collect();
                assert_eq!(hits, expect, "{ty}: hash index probe {probe}");
            }
        }
    }
}

/// RLE-dbl aggregates must be bit-identical to the raw twin *without*
/// materializing the full decoded column: both the staged scalar
/// aggregates (scratch-buffered window decode) and a fused map->sum
/// pipeline (per-morsel window decode) leave the shared decode cache
/// cold. A regression here silently doubles the live set of every
/// aggregate over run-length doubles.
#[test]
fn rle_dbl_aggregates_avoid_full_decode_and_match_raw() {
    use monet::ops::fused::{run_fused, FArg, FusedOut, Stage};

    let mut rng = StdRng::seed_from_u64(SEED ^ 0x22);
    let ctx = ExecCtx::new();
    for case in 0..6 {
        let n = rng.gen_range(32..96usize);
        let (et, rt) = encoded_pair(&mut rng, AtomType::Dbl, n, true);
        assert_eq!(et.encoding(), Enc::Rle, "case {case}: fixture must be RLE");
        let head = random_column(&mut rng, AtomType::Oid, n);
        let eb = Bat::new(head.clone(), et.clone());
        let rb = Bat::new(head, rt);

        // Staged scalar aggregates: encoded vs raw, value-for-value.
        for f in [ops::AggFunc::Sum, ops::AggFunc::Avg] {
            let g = ops::aggr_scalar(&ctx, &eb, f).unwrap();
            let e = ops::aggr_scalar(&ctx, &rb, f).unwrap();
            assert_eq!(g, e, "case {case}: staged {}", f.name());
        }

        // Fused pipeline over the *encoded* source vs the staged kernels
        // over the raw twin: map -> sum decodes one window per morsel.
        let stages = vec![
            Stage::Map {
                f: ops::ScalarFunc::Mul,
                args: vec![FArg::Chain, FArg::Const(AtomValue::Dbl(0.5))],
            },
            Stage::Aggr(ops::AggFunc::Sum),
        ];
        let fused = match run_fused(&ctx, &eb, &stages).unwrap() {
            FusedOut::Scalar(v) => v,
            FusedOut::Bat(_) => panic!("aggregate-terminated chain must yield a scalar"),
        };
        let mapped = ops::multiplex(
            &ctx,
            ops::ScalarFunc::Mul,
            &[ops::MultArg::Bat(rb.clone()), ops::MultArg::Const(AtomValue::Dbl(0.5))],
        )
        .unwrap();
        let staged = ops::aggr_scalar(&ctx, &mapped, ops::AggFunc::Sum).unwrap();
        assert_eq!(fused, staged, "case {case}: fused map->sum vs staged on raw twin");

        // The point of the window paths: nothing above may have populated
        // the full-column decode cache.
        assert_eq!(
            et.rle_decode_cached(),
            Some(false),
            "case {case}: aggregation decoded the full RLE column",
        );

        // Min/max take the generic typed path (which *may* decode); they
        // still must agree with the raw twin bit-for-bit.
        for f in [ops::AggFunc::Min, ops::AggFunc::Max] {
            let g = ops::aggr_scalar(&ctx, &eb, f).unwrap();
            let e = ops::aggr_scalar(&ctx, &rb, f).unwrap();
            assert_eq!(g, e, "case {case}: staged {}", f.name());
        }
    }
}
