//! The MOA data model for the TPC-D database (Figure 1).

use moa::types::{ClassDef, Field, MoaType, Schema};
use monet::atom::AtomType;

fn base(t: AtomType) -> MoaType {
    MoaType::Base(t)
}

fn obj(c: &str) -> MoaType {
    MoaType::Object(c.to_string())
}

/// Build the schema of Figure 1. The `groupby` SQL statement maps to the
/// OO concepts of nesting and aggregation; the set-valued attributes
/// (`Customer.orders`, `Order.items`, `Supplier.supplies`) carry the
/// nesting.
pub fn tpcd_schema() -> Schema {
    let mut s = Schema::new();
    s.add_class(ClassDef::new(
        "Region",
        vec![Field::new("name", base(AtomType::Str)), Field::new("comment", base(AtomType::Str))],
    ));
    s.add_class(ClassDef::new(
        "Nation",
        vec![Field::new("name", base(AtomType::Str)), Field::new("region", obj("Region"))],
    ));
    s.add_class(ClassDef::new(
        "Part",
        vec![
            Field::new("name", base(AtomType::Str)),
            Field::new("manufacturer", base(AtomType::Str)),
            Field::new("brand", base(AtomType::Str)),
            Field::new("type", base(AtomType::Str)),
            Field::new("size", base(AtomType::Int)),
            Field::new("container", base(AtomType::Str)),
            Field::new("retailprice", base(AtomType::Dbl)),
        ],
    ));
    s.add_class(ClassDef::new(
        "Supplier",
        vec![
            Field::new("name", base(AtomType::Str)),
            Field::new("address", base(AtomType::Str)),
            Field::new("phone", base(AtomType::Str)),
            Field::new("acctbal", base(AtomType::Dbl)),
            Field::new("nation", obj("Nation")),
            Field::new(
                "supplies",
                MoaType::set_of(MoaType::Tuple(vec![
                    Field::new("part", obj("Part")),
                    Field::new("cost", base(AtomType::Dbl)),
                    Field::new("available", base(AtomType::Int)),
                ])),
            ),
        ],
    ));
    s.add_class(ClassDef::new(
        "Customer",
        vec![
            Field::new("name", base(AtomType::Str)),
            Field::new("address", base(AtomType::Str)),
            Field::new("phone", base(AtomType::Str)),
            Field::new("acctbal", base(AtomType::Dbl)),
            Field::new("nation", obj("Nation")),
            Field::new("mktsegment", base(AtomType::Str)),
            Field::new("orders", MoaType::set_of(obj("Order"))),
        ],
    ));
    s.add_class(ClassDef::new(
        "Order",
        vec![
            Field::new("cust", obj("Customer")),
            Field::new("items", MoaType::set_of(obj("Item"))),
            Field::new("status", base(AtomType::Chr)),
            Field::new("totalprice", base(AtomType::Dbl)),
            Field::new("orderdate", base(AtomType::Date)),
            Field::new("orderpriority", base(AtomType::Str)),
            Field::new("clerk", base(AtomType::Str)),
            Field::new("shippriority", base(AtomType::Str)),
        ],
    ));
    s.add_class(ClassDef::new(
        "Item",
        vec![
            Field::new("part", obj("Part")),
            Field::new("supplier", obj("Supplier")),
            Field::new("order", obj("Order")),
            Field::new("quantity", base(AtomType::Int)),
            Field::new("returnflag", base(AtomType::Chr)),
            Field::new("linestatus", base(AtomType::Chr)),
            Field::new("extendedprice", base(AtomType::Dbl)),
            Field::new("discount", base(AtomType::Dbl)),
            Field::new("tax", base(AtomType::Dbl)),
            Field::new("shipdate", base(AtomType::Date)),
            Field::new("commitdate", base(AtomType::Date)),
            Field::new("receiptdate", base(AtomType::Date)),
            Field::new("shipmode", base(AtomType::Str)),
            Field::new("shipinstruct", base(AtomType::Str)),
        ],
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_classes() {
        let s = tpcd_schema();
        assert_eq!(s.len(), 7);
        for c in ["Region", "Nation", "Part", "Supplier", "Customer", "Order", "Item"] {
            assert!(s.class(c).is_ok(), "missing {c}");
        }
    }

    #[test]
    fn navigation_paths_resolve() {
        let s = tpcd_schema();
        assert!(s.resolve_path("Item", &["order".into(), "clerk".into()]).is_ok());
        assert!(s
            .resolve_path(
                "Item",
                &["supplier".into(), "nation".into(), "region".into(), "name".into()]
            )
            .is_ok());
        assert!(s.resolve_path("Customer", &["nation".into(), "name".into()]).is_ok());
    }

    #[test]
    fn nested_attributes_have_set_types() {
        let s = tpcd_schema();
        let sup = s.class("Supplier").unwrap();
        assert!(matches!(sup.field("supplies").unwrap().ty, MoaType::Set(_)));
        let ord = s.class("Order").unwrap();
        assert!(matches!(ord.field("items").unwrap().ty, MoaType::Set(_)));
    }

    #[test]
    fn figure1_renders() {
        let s = tpcd_schema();
        let printed = s.class("Supplier").unwrap().to_string();
        assert!(printed.contains("supplies"));
        assert!(printed.contains("{<part : Part, cost : dbl, available : int>}"));
    }
}
