//! Typed errors for the generator and the load pipeline.
//!
//! A malformed or truncated world (bad scale factor, dangling references,
//! non-dense extents, mis-sorted set indexes) must degrade into a typed
//! error the caller can report, never a panic inside the loader or a
//! silently corrupt catalog whose `dense`/`sorted` property claims are
//! wrong.

use std::fmt;

/// Errors raised while generating or loading a TPC-D world.
#[derive(Debug, Clone, PartialEq)]
pub enum TpcdError {
    /// Scale factor is not a finite positive number.
    InvalidScaleFactor { sf: f64 },
    /// The world data violates an invariant the loader depends on.
    Malformed { table: &'static str, detail: String },
    /// A persistent store directory failed to write, or failed validation
    /// on open (bad magic/version, checksum mismatch, truncation,
    /// descriptor inconsistency). Carries the kernel's typed store error;
    /// nothing is registered into a catalog when this is raised.
    Store(monet::error::MonetError),
}

impl fmt::Display for TpcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpcdError::InvalidScaleFactor { sf } => {
                write!(f, "scale factor must be a finite positive number, got {sf}")
            }
            TpcdError::Malformed { table, detail } => {
                write!(f, "malformed world: table {table}: {detail}")
            }
            TpcdError::Store(e) => write!(f, "persistent store: {e}"),
        }
    }
}

impl std::error::Error for TpcdError {}

impl From<monet::error::MonetError> for TpcdError {
    fn from(e: monet::error::MonetError) -> TpcdError {
        TpcdError::Store(e)
    }
}

/// Result alias for the tpcd crate.
pub type Result<T> = std::result::Result<T, TpcdError>;
