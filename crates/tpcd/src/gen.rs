//! The DBGEN-equivalent data generator (substitution for the TPC-D DBGEN
//! tool; see DESIGN.md §5.1).
//!
//! Deterministic (seeded) and scale-factor parameterized, with the TPC-D
//! cardinality ratios: per SF 1.0 — 200k parts, 10k suppliers, 800k
//! supply (partsupp) entries, 150k customers, 1.5M orders, ~6M items,
//! 25 nations, 5 regions. Object identifiers are allocated densely per
//! class, so extents are dense oid ranges (which the loader exploits).

use monet::atom::{Date, Oid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::text;

/// Generated database as plain rows, consumed by both the BAT loader and
/// the n-ary baseline loader.
#[derive(Debug)]
pub struct TpcdData {
    pub sf: f64,
    pub regions: Vec<RegionRow>,
    pub nations: Vec<NationRow>,
    pub parts: Vec<PartRow>,
    pub suppliers: Vec<SupplierRow>,
    /// Supply (partsupp) entries, grouped by supplier (ascending oid).
    pub supplies: Vec<SupplyRow>,
    pub customers: Vec<CustomerRow>,
    pub orders: Vec<OrderRow>,
    pub items: Vec<ItemRow>,
    /// Number of distinct clerks (`Clerk#000000001 ..`).
    pub clerk_count: u32,
}

#[derive(Debug, Clone)]
pub struct RegionRow {
    pub oid: Oid,
    pub name: String,
    pub comment: String,
}

#[derive(Debug, Clone)]
pub struct NationRow {
    pub oid: Oid,
    pub name: String,
    pub region: Oid,
}

#[derive(Debug, Clone)]
pub struct PartRow {
    pub oid: Oid,
    pub name: String,
    pub manufacturer: String,
    pub brand: String,
    pub typ: String,
    pub size: i32,
    pub container: String,
    pub retailprice: f64,
}

#[derive(Debug, Clone)]
pub struct SupplierRow {
    pub oid: Oid,
    pub name: String,
    pub address: String,
    pub phone: String,
    pub acctbal: f64,
    pub nation: Oid,
}

#[derive(Debug, Clone)]
pub struct SupplyRow {
    /// Element id of the supply tuple inside the supplier's `supplies` set.
    pub oid: Oid,
    pub supplier: Oid,
    pub part: Oid,
    pub cost: f64,
    pub available: i32,
}

#[derive(Debug, Clone)]
pub struct CustomerRow {
    pub oid: Oid,
    pub name: String,
    pub address: String,
    pub phone: String,
    pub acctbal: f64,
    pub nation: Oid,
    pub mktsegment: String,
}

#[derive(Debug, Clone)]
pub struct OrderRow {
    pub oid: Oid,
    pub cust: Oid,
    pub status: u8,
    pub totalprice: f64,
    pub orderdate: Date,
    pub orderpriority: String,
    pub clerk: String,
    pub shippriority: String,
}

#[derive(Debug, Clone)]
pub struct ItemRow {
    pub oid: Oid,
    pub part: Oid,
    pub supplier: Oid,
    pub order: Oid,
    pub quantity: i32,
    pub returnflag: u8,
    pub linestatus: u8,
    pub extendedprice: f64,
    pub discount: f64,
    pub tax: f64,
    pub shipdate: Date,
    pub commitdate: Date,
    pub receiptdate: Date,
    pub shipmode: String,
    pub shipinstruct: String,
}

/// The date window of TPC-D order dates: 1992-01-01 .. 1998-08-02.
pub fn order_date_range() -> (Date, Date) {
    (Date::from_ymd(1992, 1, 1), Date::from_ymd(1998, 8, 2))
}

/// The current-date constant the benchmark predicates use.
pub fn tpcd_currentdate() -> Date {
    Date::from_ymd(1995, 6, 17)
}

/// Generate a database at the given scale factor with a fixed seed.
///
/// Panics on an invalid scale factor; use [`try_generate`] where the
/// scale factor comes from user input.
pub fn generate(sf: f64, seed: u64) -> TpcdData {
    try_generate(sf, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Clerks at a scale factor (TPC-D: SF·1000, min 2). Pure in `sf`, so a
/// parameter set can be rebuilt from the scale factor a persistent store
/// recorded, without the generated rows.
pub fn clerk_count_for_sf(sf: f64) -> u32 {
    ((1_000.0 * sf) as u32).max(2)
}

/// Generate a database, rejecting malformed scale factors (NaN, infinite,
/// zero or negative) with a typed error instead of panicking.
pub fn try_generate(sf: f64, seed: u64) -> crate::error::Result<TpcdData> {
    if !sf.is_finite() || sf <= 0.0 {
        return Err(crate::error::TpcdError::InvalidScaleFactor { sf });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n_parts = ((200_000.0 * sf) as usize).max(8);
    let n_suppliers = ((10_000.0 * sf) as usize).max(4);
    let n_customers = ((150_000.0 * sf) as usize).max(6);
    let n_orders = ((1_500_000.0 * sf) as usize).max(12);
    let clerk_count = clerk_count_for_sf(sf);

    let mut next_oid: Oid = 1000;
    let mut take = |n: usize| -> Oid {
        let base = next_oid;
        next_oid += n as Oid;
        base
    };

    // Regions and nations.
    let region_base = take(text::REGIONS.len());
    let regions: Vec<RegionRow> = text::REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| RegionRow {
            oid: region_base + i as Oid,
            name: name.to_string(),
            comment: format!("region {name}"),
        })
        .collect();
    let nation_base = take(text::NATIONS.len());
    let nations: Vec<NationRow> = text::NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, r))| NationRow {
            oid: nation_base + i as Oid,
            name: name.to_string(),
            region: region_base + *r as Oid,
        })
        .collect();

    // Parts.
    let part_base = take(n_parts);
    let parts: Vec<PartRow> = (0..n_parts)
        .map(|i| {
            let key = i as u64 + 1;
            let mfgr = rng.gen_range(1..=5u32);
            PartRow {
                oid: part_base + i as Oid,
                name: text::part_name(&mut rng),
                manufacturer: format!("Manufacturer#{mfgr}"),
                brand: text::part_brand(mfgr, &mut rng),
                typ: text::part_type(&mut rng),
                size: rng.gen_range(1..=50),
                container: text::container(&mut rng),
                // The spec's retail price formula, in dollars.
                retailprice: (90_000.0
                    + (key % 20_001) as f64 / 10.0
                    + 100.0 * (key % 1_000) as f64)
                    / 100.0,
            }
        })
        .collect();

    // Suppliers.
    let supplier_base = take(n_suppliers);
    let suppliers: Vec<SupplierRow> = (0..n_suppliers)
        .map(|i| {
            let nat = rng.gen_range(0..nations.len());
            SupplierRow {
                oid: supplier_base + i as Oid,
                name: text::supplier_name(i as u64 + 1),
                address: text::address(&mut rng),
                phone: text::phone(nat, &mut rng),
                acctbal: rng.gen_range(-999.99..9999.99),
                nation: nations[nat].oid,
            }
        })
        .collect();

    // Supplies: 4 suppliers per part (the partsupp ratio), grouped by
    // supplier so that set-index BATs load owner-sorted. ~2% of entries
    // are out of stock (`available = 0`, the §4.3.2 example). Items later
    // pick their supplier among the part's suppliers (TPC-D semantics,
    // needed for Q9's item ⋈ partsupp profit computation).
    let mut per_supplier: Vec<Vec<(Oid, f64, i32)>> = vec![Vec::new(); n_suppliers];
    let mut suppliers_of_part: Vec<[usize; 4]> = Vec::with_capacity(n_parts);
    for part in &parts {
        // Four *distinct* suppliers per part (partsupp's compound key).
        let mut chosen = [0usize; 4];
        for i in 0..4 {
            let s = loop {
                let s = rng.gen_range(0..n_suppliers);
                if !chosen[..i].contains(&s) {
                    break s;
                }
            };
            chosen[i] = s;
            let cost = rng.gen_range(1.0..1000.0);
            let available = if rng.gen_bool(0.02) { 0 } else { rng.gen_range(1..=9999) };
            per_supplier[s].push((part.oid, cost, available));
        }
        suppliers_of_part.push(chosen);
    }
    let n_supplies: usize = per_supplier.iter().map(Vec::len).sum();
    let supply_base = take(n_supplies);
    let mut supplies = Vec::with_capacity(n_supplies);
    for (s, entries) in per_supplier.into_iter().enumerate() {
        for (part, cost, available) in entries {
            supplies.push(SupplyRow {
                oid: supply_base + supplies.len() as Oid,
                supplier: supplier_base + s as Oid,
                part,
                cost,
                available,
            });
        }
    }

    // Customers.
    let customer_base = take(n_customers);
    let customers: Vec<CustomerRow> = (0..n_customers)
        .map(|i| {
            let nat = rng.gen_range(0..nations.len());
            CustomerRow {
                oid: customer_base + i as Oid,
                name: text::customer_name(i as u64 + 1),
                address: text::address(&mut rng),
                phone: text::phone(nat, &mut rng),
                acctbal: rng.gen_range(-999.99..9999.99),
                nation: nations[nat].oid,
                mktsegment: text::SEGMENTS[rng.gen_range(0..text::SEGMENTS.len())].to_string(),
            }
        })
        .collect();

    // Orders and items.
    let (dmin, dmax) = order_date_range();
    let current = tpcd_currentdate();
    let order_base = take(n_orders);
    let mut orders = Vec::with_capacity(n_orders);
    let mut item_rows: Vec<ItemRow> = Vec::with_capacity(n_orders * 4);
    struct PendingItem {
        part: usize,
        supplier: Oid,
        quantity: i32,
        discount: f64,
        tax: f64,
        shipdate: Date,
        commitdate: Date,
        receiptdate: Date,
    }
    for i in 0..n_orders {
        let oid = order_base + i as Oid;
        // A third of the customers place no orders (TPC-D convention).
        let cust_idx = loop {
            let c = rng.gen_range(0..n_customers);
            if c % 3 != 0 || n_customers < 3 {
                break c;
            }
        };
        let orderdate = Date(rng.gen_range(dmin.0..=dmax.0));
        let n_items = rng.gen_range(1..=7);
        let mut pending = Vec::with_capacity(n_items);
        for _ in 0..n_items {
            let part = rng.gen_range(0..n_parts);
            // One of the part's four suppliers (TPC-D 4.2.3 semantics).
            let supplier = supplier_base + suppliers_of_part[part][rng.gen_range(0..4usize)] as Oid;
            let shipdate = orderdate.add_days(rng.gen_range(1..=121));
            pending.push(PendingItem {
                part,
                supplier,
                quantity: rng.gen_range(1..=50),
                discount: rng.gen_range(0..=10) as f64 / 100.0,
                tax: rng.gen_range(0..=8) as f64 / 100.0,
                shipdate,
                commitdate: orderdate.add_days(rng.gen_range(30..=90)),
                receiptdate: shipdate.add_days(rng.gen_range(1..=30)),
            });
        }
        let mut totalprice = 0.0;
        let mut all_f = true;
        let mut all_o = true;
        for p in &pending {
            let extprice = p.quantity as f64 * parts[p.part].retailprice;
            totalprice += extprice * (1.0 + p.tax) * (1.0 - p.discount);
            let linestatus = if p.shipdate > current { b'O' } else { b'F' };
            all_f &= linestatus == b'F';
            all_o &= linestatus == b'O';
            let returnflag = if p.receiptdate <= current {
                if rng.gen_bool(0.5) {
                    b'R'
                } else {
                    b'A'
                }
            } else {
                b'N'
            };
            item_rows.push(ItemRow {
                oid: 0, // assigned below
                part: parts[p.part].oid,
                supplier: p.supplier,
                order: oid,
                quantity: p.quantity,
                returnflag,
                linestatus,
                extendedprice: extprice,
                discount: p.discount,
                tax: p.tax,
                shipdate: p.shipdate,
                commitdate: p.commitdate,
                receiptdate: p.receiptdate,
                shipmode: text::SHIP_MODES[rng.gen_range(0..text::SHIP_MODES.len())].to_string(),
                shipinstruct: text::SHIP_INSTRUCTIONS
                    [rng.gen_range(0..text::SHIP_INSTRUCTIONS.len())]
                .to_string(),
            });
        }
        orders.push(OrderRow {
            oid,
            cust: customers[cust_idx].oid,
            status: if all_f {
                b'F'
            } else if all_o {
                b'O'
            } else {
                b'P'
            },
            totalprice,
            orderdate,
            orderpriority: text::PRIORITIES[rng.gen_range(0..text::PRIORITIES.len())].to_string(),
            clerk: text::clerk_name(rng.gen_range(1..=clerk_count)),
            shippriority: "0".to_string(),
        });
    }
    let item_base = take(item_rows.len());
    let mut items = item_rows;
    for (i, item) in items.iter_mut().enumerate() {
        item.oid = item_base + i as Oid;
    }

    Ok(TpcdData {
        sf,
        regions,
        nations,
        parts,
        suppliers,
        supplies,
        customers,
        orders,
        items,
        clerk_count,
    })
}

impl TpcdData {
    /// Total logical rows, for reporting.
    pub fn total_rows(&self) -> usize {
        self.regions.len()
            + self.nations.len()
            + self.parts.len()
            + self.suppliers.len()
            + self.supplies.len()
            + self.customers.len()
            + self.orders.len()
            + self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_ratios() {
        let d = generate(0.01, 42);
        assert_eq!(d.parts.len(), 2000);
        assert_eq!(d.suppliers.len(), 100);
        assert_eq!(d.customers.len(), 1500);
        assert_eq!(d.orders.len(), 15_000);
        assert_eq!(d.supplies.len(), 8000); // 4 per part
        let avg_items = d.items.len() as f64 / d.orders.len() as f64;
        assert!((3.0..5.0).contains(&avg_items), "avg items {avg_items}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.002, 7);
        let b = generate(0.002, 7);
        assert_eq!(a.items.len(), b.items.len());
        assert_eq!(a.items[10].extendedprice, b.items[10].extendedprice);
        assert_eq!(a.orders[5].clerk, b.orders[5].clerk);
        let c = generate(0.002, 8);
        assert!(
            a.orders[5].clerk != c.orders[5].clerk
                || a.items.len() != c.items.len()
                || a.items[10].extendedprice != c.items[10].extendedprice
        );
    }

    #[test]
    fn oids_dense_and_disjoint() {
        let d = generate(0.002, 1);
        // Extents are dense ranges.
        for w in d.orders.windows(2) {
            assert_eq!(w[1].oid, w[0].oid + 1);
        }
        for w in d.items.windows(2) {
            assert_eq!(w[1].oid, w[0].oid + 1);
        }
        // Classes don't overlap.
        let order_range = d.orders[0].oid..=d.orders.last().unwrap().oid;
        assert!(!order_range.contains(&d.items[0].oid));
        assert!(!order_range.contains(&d.customers[0].oid));
    }

    #[test]
    fn referential_integrity() {
        let d = generate(0.002, 3);
        let parts: std::collections::HashSet<Oid> = d.parts.iter().map(|p| p.oid).collect();
        let sups: std::collections::HashSet<Oid> = d.suppliers.iter().map(|s| s.oid).collect();
        let ords: std::collections::HashSet<Oid> = d.orders.iter().map(|o| o.oid).collect();
        assert!(d.items.iter().all(|i| parts.contains(&i.part)));
        assert!(d.items.iter().all(|i| sups.contains(&i.supplier)));
        assert!(d.items.iter().all(|i| ords.contains(&i.order)));
        assert!(d.supplies.iter().all(|s| parts.contains(&s.part)));
        assert!(d.supplies.iter().all(|s| sups.contains(&s.supplier)));
    }

    #[test]
    fn supplies_grouped_by_supplier() {
        let d = generate(0.002, 3);
        for w in d.supplies.windows(2) {
            assert!(w[0].supplier <= w[1].supplier, "supplies must be owner-sorted");
            assert_eq!(w[1].oid, w[0].oid + 1);
        }
    }

    #[test]
    fn date_semantics() {
        let d = generate(0.002, 9);
        let current = tpcd_currentdate();
        for it in &d.items {
            assert!(it.shipdate > Date::from_ymd(1992, 1, 1));
            assert!(it.receiptdate > it.shipdate);
            if it.linestatus == b'O' {
                assert!(it.shipdate > current);
            }
            if it.returnflag == b'R' || it.returnflag == b'A' {
                assert!(it.receiptdate <= current);
            }
        }
    }

    #[test]
    fn one_third_of_customers_have_no_orders() {
        let d = generate(0.01, 11);
        let with_orders: std::collections::HashSet<Oid> = d.orders.iter().map(|o| o.cust).collect();
        let frac = with_orders.len() as f64 / d.customers.len() as f64;
        assert!((0.55..0.72).contains(&frac), "fraction {frac}");
    }
}
