//! Text pools and name generators of the DBGEN equivalent.
//!
//! The value families follow the TPC-D specification closely enough that
//! the benchmark predicates (segments, priorities, ship modes, brand/type
//! prefixes, clerk names) have the same selectivities as in the paper's
//! runs; the free-text comment grammar is simplified.

use rand::rngs::StdRng;
use rand::Rng;

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-D nations with their region index.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];

pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

pub const SHIP_INSTRUCTIONS: [&str; 4] =
    ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];

pub const CONTAINERS_1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
pub const CONTAINERS_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

pub const TYPES_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPES_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPES_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

pub const NAME_PARTS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
];

/// `Clerk#000000NNN`, NNN in `1..=count` — the paper's Q13 selects one of
/// these, giving the 0.1% Item selectivity of Figure 9.
pub fn clerk_name(n: u32) -> String {
    format!("Clerk#{n:09}")
}

pub fn supplier_name(key: u64) -> String {
    format!("Supplier#{key:09}")
}

pub fn customer_name(key: u64) -> String {
    format!("Customer#{key:09}")
}

/// Part names are a few space-joined colour words (deterministic per key).
pub fn part_name(rng: &mut StdRng) -> String {
    let mut words = Vec::with_capacity(3);
    for _ in 0..3 {
        words.push(NAME_PARTS[rng.gen_range(0..NAME_PARTS.len())]);
    }
    words.join(" ")
}

pub fn part_type(rng: &mut StdRng) -> String {
    format!(
        "{} {} {}",
        TYPES_1[rng.gen_range(0..TYPES_1.len())],
        TYPES_2[rng.gen_range(0..TYPES_2.len())],
        TYPES_3[rng.gen_range(0..TYPES_3.len())]
    )
}

pub fn part_brand(mfgr: u32, rng: &mut StdRng) -> String {
    format!("Brand#{}{}", mfgr, rng.gen_range(1..=5))
}

pub fn container(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        CONTAINERS_1[rng.gen_range(0..CONTAINERS_1.len())],
        CONTAINERS_2[rng.gen_range(0..CONTAINERS_2.len())]
    )
}

pub fn phone(nation: usize, rng: &mut StdRng) -> String {
    format!(
        "{}-{}-{}-{}",
        10 + nation,
        rng.gen_range(100..=999),
        rng.gen_range(100..=999),
        rng.gen_range(1000..=9999)
    )
}

pub fn address(rng: &mut StdRng) -> String {
    let len = rng.gen_range(10..=30);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        s.push((b'a' + rng.gen_range(0..26u8)) as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clerk_names_match_paper_format() {
        assert_eq!(clerk_name(88), "Clerk#000000088");
        assert_eq!(clerk_name(1), "Clerk#000000001");
    }

    #[test]
    fn nations_cover_all_regions() {
        let mut seen = [false; 5];
        for (_, r) in NATIONS {
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(NATIONS.len(), 25);
    }

    #[test]
    fn text_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(part_name(&mut a), part_name(&mut b));
        assert_eq!(part_type(&mut a), part_type(&mut b));
        assert_eq!(phone(3, &mut a), phone(3, &mut b));
    }

    #[test]
    fn promo_types_exist() {
        // Q14 relies on the PROMO prefix appearing in ~1/6 of types.
        let mut rng = StdRng::seed_from_u64(42);
        let n = (0..6000).filter(|_| part_type(&mut rng).starts_with("PROMO")).count();
        assert!((600..1500).contains(&n), "got {n} PROMO of 6000");
    }
}
