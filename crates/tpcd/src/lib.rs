//! # tpcd — DBGEN-equivalent generator and load pipeline
//!
//! The paper evaluates on the 1 GB TPC-D benchmark; this crate supplies
//! the substitute for the DBGEN tool (DESIGN.md §5.1) and the three-phase
//! load pipeline of Section 6:
//!
//! 1. **bulk load** — decompose the generated rows into oid-ordered
//!    attribute BATs with the `key`/`ordered`/`synced` properties set;
//! 2. **extents + datavectors** — project out the per-class extents and
//!    create the datavector for every attribute (cheap while oid-ordered);
//! 3. **reorder** — re-sort every attribute BAT on tail values so that
//!    selections and value joins run on sorted columns.
//!
//! [`load::load_bats`] returns the MOA [`moa::catalog::Catalog`];
//! [`load::load_rowstore`] builds the n-ary baseline database.

pub mod error;
pub mod gen;
pub mod load;
pub mod schema;
pub mod store;
pub mod text;

pub use error::TpcdError;
pub use gen::{generate, try_generate, TpcdData};
pub use load::{load_bats, load_rowstore, try_load_bats, try_load_rowstore, LoadReport};
pub use schema::tpcd_schema;
pub use store::{open_catalog, save_catalog, OpenedCatalog};
