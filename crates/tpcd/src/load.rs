//! The load pipeline of Section 6.
//!
//! "We loaded these into Monet using its bulk load utility, which
//! correctly sets the properties key, ordered and synced for each
//! generated BAT. For each class, an extent[oid,void] was created…
//! Initially all tables were sorted on oid, so it was cheap to create
//! datavectors… we then reordered all tables on tail values."
//!
//! Phase 1 — decompose into oid-ordered BATs (head dense, shared head
//! columns per class so attribute BATs are mutually *synced*);
//! Phase 2 — extents + one shared [`Extent`] accelerator per class, and a
//! datavector per attribute (projection of the oid-ordered tail);
//! Phase 3 — re-sort every attribute BAT on tail and attach the
//! datavector.

use std::sync::Arc;
use std::time::Instant;

use moa::catalog::Catalog;
use monet::accel::datavector::{Datavector, Extent};
use monet::atom::{Date, Oid};
use monet::bat::Bat;
use monet::column::Column;
use monet::db::Db;
use monet::props::{ColProps, Props};
use monet::strheap::StrHeapBuilder;
use relstore::{RelDb, Table};

use crate::error::TpcdError;
use crate::gen::TpcdData;
use crate::schema::tpcd_schema;

/// Timing and size report of the three load phases (the `load` row of
/// Figure 9).
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    pub bulk_ms: f64,
    pub accel_ms: f64,
    pub reorder_ms: f64,
    /// Base-data bytes after load (Figure 9: "1.3 GB as base data").
    pub base_bytes: usize,
    /// Datavector bytes (Figure 9: "300 MB in data vectors").
    pub dv_bytes: usize,
    pub bat_count: usize,
}

impl LoadReport {
    pub fn total_ms(&self) -> f64 {
        self.bulk_ms + self.accel_ms + self.reorder_ms
    }
}

/// A class being decomposed: shared dense head column plus the attribute
/// tails, accumulated before the phases run.
struct ClassBats {
    class: String,
    head: Column,
    /// (attr name, tail column, attach datavector + reorder?)
    attrs: Vec<(String, Column, bool)>,
}

fn str_col<'b>(items: impl Iterator<Item = &'b str>, dedup: bool) -> Column {
    let mut b = StrHeapBuilder::new();
    for s in items {
        if dedup {
            b.push_dedup(s);
        } else {
            b.push(s);
        }
    }
    Column::from_strvec(b.finish())
}

fn tail_props(tail: &Column) -> ColProps {
    let sorted = tail.check_sorted();
    // Key detection is only cheap on sorted columns; claim nothing
    // otherwise (claims must be sound, not complete).
    let key =
        sorted && (1..tail.len()).all(|i| tail.cmp_at(i - 1, tail, i) == std::cmp::Ordering::Less);
    ColProps { sorted, key, dense: false, ..ColProps::NONE }
}

/// The loaders bake structural claims into the catalog — dense head
/// columns, per-class [`Extent`] accelerators, owner-sorted set indexes.
/// A world violating them (hand-built, truncated, or corrupted) must be
/// rejected up front: loading it would not panic here but would produce a
/// catalog whose property claims are lies, corrupting every query that
/// trusts them.
pub fn validate(data: &TpcdData) -> crate::error::Result<()> {
    // Each class extent must be a non-empty dense ascending oid range
    // (`ColProps::DENSE` heads, `Extent::new`, and the oid arithmetic of
    // the set indexes all depend on it).
    fn extent(
        table: &'static str,
        mut oids: impl Iterator<Item = Oid>,
    ) -> crate::error::Result<(Oid, Oid)> {
        let first =
            oids.next().ok_or(TpcdError::Malformed { table, detail: "table is empty".into() })?;
        let mut prev = first;
        for o in oids {
            if o != prev + 1 {
                return Err(TpcdError::Malformed {
                    table,
                    detail: format!("extent not dense: oid {o} follows {prev}"),
                });
            }
            prev = o;
        }
        Ok((first, prev))
    }
    let regions = extent("Region", data.regions.iter().map(|r| r.oid))?;
    let nations = extent("Nation", data.nations.iter().map(|n| n.oid))?;
    let parts = extent("Part", data.parts.iter().map(|p| p.oid))?;
    let suppliers = extent("Supplier", data.suppliers.iter().map(|s| s.oid))?;
    extent("Supplier_supplies", data.supplies.iter().map(|s| s.oid))?;
    let customers = extent("Customer", data.customers.iter().map(|c| c.oid))?;
    let orders = extent("Order", data.orders.iter().map(|o| o.oid))?;
    extent("Item", data.items.iter().map(|i| i.oid))?;

    // Referential integrity: every object reference must land inside its
    // target extent (dangling references make join results silently drop
    // or fabricate rows).
    fn refs(
        table: &'static str,
        attr: &str,
        target: (Oid, Oid),
        mut vals: impl Iterator<Item = Oid>,
    ) -> crate::error::Result<()> {
        match vals.find(|&o| o < target.0 || o > target.1) {
            None => Ok(()),
            Some(o) => Err(TpcdError::Malformed {
                table,
                detail: format!("{attr} references oid {o} outside {}..={}", target.0, target.1),
            }),
        }
    }
    refs("Nation", "region", regions, data.nations.iter().map(|n| n.region))?;
    refs("Supplier", "nation", nations, data.suppliers.iter().map(|s| s.nation))?;
    refs("Supplier_supplies", "part", parts, data.supplies.iter().map(|s| s.part))?;
    refs("Customer", "nation", nations, data.customers.iter().map(|c| c.nation))?;
    refs("Order", "cust", customers, data.orders.iter().map(|o| o.cust))?;
    refs("Item", "part", parts, data.items.iter().map(|i| i.part))?;
    refs("Item", "supplier", suppliers, data.items.iter().map(|i| i.supplier))?;
    refs("Item", "order", orders, data.items.iter().map(|i| i.order))?;

    // The supply set index loads owner-sorted (grouped by supplier).
    if let Some(w) = data.supplies.windows(2).find(|w| w[0].supplier > w[1].supplier) {
        return Err(TpcdError::Malformed {
            table: "Supplier_supplies",
            detail: format!(
                "set index not owner-sorted: supplier {} follows {}",
                w[1].supplier, w[0].supplier
            ),
        });
    }
    Ok(())
}

/// Load the generated data into the decomposed BAT representation,
/// returning the MOA catalog and the load report.
///
/// Panics on a malformed world; use [`try_load_bats`] when the data does
/// not come straight from [`crate::gen::generate`].
pub fn load_bats(data: &TpcdData) -> (Catalog, LoadReport) {
    try_load_bats(data).unwrap_or_else(|e| panic!("{e}"))
}

/// Validate the world (see [`validate`]) and load it; a malformed or
/// truncated world is rejected with a typed error instead of producing a
/// catalog with false property claims.
pub fn try_load_bats(data: &TpcdData) -> crate::error::Result<(Catalog, LoadReport)> {
    validate(data)?;
    Ok(load_bats_unchecked(data))
}

fn load_bats_unchecked(data: &TpcdData) -> (Catalog, LoadReport) {
    let mut report = LoadReport::default();

    // ---- Phase 1: bulk load (decomposition, oid-ordered) -----------------
    let t0 = Instant::now();
    let mut classes: Vec<ClassBats> = Vec::new();

    {
        let head = Column::from_oids(data.regions.iter().map(|r| r.oid).collect());
        classes.push(ClassBats {
            class: "Region".into(),
            head,
            attrs: vec![
                ("name".into(), str_col(data.regions.iter().map(|r| r.name.as_str()), false), true),
                (
                    "comment".into(),
                    str_col(data.regions.iter().map(|r| r.comment.as_str()), false),
                    true,
                ),
            ],
        });
    }
    {
        let head = Column::from_oids(data.nations.iter().map(|n| n.oid).collect());
        classes.push(ClassBats {
            class: "Nation".into(),
            head,
            attrs: vec![
                ("name".into(), str_col(data.nations.iter().map(|n| n.name.as_str()), false), true),
                (
                    "region".into(),
                    Column::from_oids(data.nations.iter().map(|n| n.region).collect()),
                    true,
                ),
            ],
        });
    }
    {
        let head = Column::from_oids(data.parts.iter().map(|p| p.oid).collect());
        classes.push(ClassBats {
            class: "Part".into(),
            head,
            attrs: vec![
                ("name".into(), str_col(data.parts.iter().map(|p| p.name.as_str()), true), true),
                (
                    "manufacturer".into(),
                    str_col(data.parts.iter().map(|p| p.manufacturer.as_str()), true),
                    true,
                ),
                ("brand".into(), str_col(data.parts.iter().map(|p| p.brand.as_str()), true), true),
                ("type".into(), str_col(data.parts.iter().map(|p| p.typ.as_str()), true), true),
                (
                    "size".into(),
                    Column::from_ints(data.parts.iter().map(|p| p.size).collect()),
                    true,
                ),
                (
                    "container".into(),
                    str_col(data.parts.iter().map(|p| p.container.as_str()), true),
                    true,
                ),
                (
                    "retailprice".into(),
                    Column::from_dbls(data.parts.iter().map(|p| p.retailprice).collect()),
                    true,
                ),
            ],
        });
    }
    {
        let head = Column::from_oids(data.suppliers.iter().map(|s| s.oid).collect());
        classes.push(ClassBats {
            class: "Supplier".into(),
            head,
            attrs: vec![
                (
                    "name".into(),
                    str_col(data.suppliers.iter().map(|s| s.name.as_str()), false),
                    true,
                ),
                (
                    "address".into(),
                    str_col(data.suppliers.iter().map(|s| s.address.as_str()), false),
                    true,
                ),
                (
                    "phone".into(),
                    str_col(data.suppliers.iter().map(|s| s.phone.as_str()), false),
                    true,
                ),
                (
                    "acctbal".into(),
                    Column::from_dbls(data.suppliers.iter().map(|s| s.acctbal).collect()),
                    true,
                ),
                (
                    "nation".into(),
                    Column::from_oids(data.suppliers.iter().map(|s| s.nation).collect()),
                    true,
                ),
            ],
        });
    }
    {
        // The supply tuples are the elements of Supplier.supplies; their
        // member BATs behave exactly like class attributes.
        let head = Column::from_oids(data.supplies.iter().map(|s| s.oid).collect());
        classes.push(ClassBats {
            class: "Supplier_supplies".into(),
            head,
            attrs: vec![
                (
                    "part".into(),
                    Column::from_oids(data.supplies.iter().map(|s| s.part).collect()),
                    true,
                ),
                (
                    "cost".into(),
                    Column::from_dbls(data.supplies.iter().map(|s| s.cost).collect()),
                    true,
                ),
                (
                    "available".into(),
                    Column::from_ints(data.supplies.iter().map(|s| s.available).collect()),
                    true,
                ),
            ],
        });
    }
    {
        let head = Column::from_oids(data.customers.iter().map(|c| c.oid).collect());
        classes.push(ClassBats {
            class: "Customer".into(),
            head,
            attrs: vec![
                (
                    "name".into(),
                    str_col(data.customers.iter().map(|c| c.name.as_str()), false),
                    true,
                ),
                (
                    "address".into(),
                    str_col(data.customers.iter().map(|c| c.address.as_str()), false),
                    true,
                ),
                (
                    "phone".into(),
                    str_col(data.customers.iter().map(|c| c.phone.as_str()), false),
                    true,
                ),
                (
                    "acctbal".into(),
                    Column::from_dbls(data.customers.iter().map(|c| c.acctbal).collect()),
                    true,
                ),
                (
                    "nation".into(),
                    Column::from_oids(data.customers.iter().map(|c| c.nation).collect()),
                    true,
                ),
                (
                    "mktsegment".into(),
                    str_col(data.customers.iter().map(|c| c.mktsegment.as_str()), true),
                    true,
                ),
            ],
        });
    }
    {
        let head = Column::from_oids(data.orders.iter().map(|o| o.oid).collect());
        classes.push(ClassBats {
            class: "Order".into(),
            head,
            attrs: vec![
                (
                    "cust".into(),
                    Column::from_oids(data.orders.iter().map(|o| o.cust).collect()),
                    true,
                ),
                (
                    "status".into(),
                    Column::from_chrs(data.orders.iter().map(|o| o.status).collect()),
                    true,
                ),
                (
                    "totalprice".into(),
                    Column::from_dbls(data.orders.iter().map(|o| o.totalprice).collect()),
                    true,
                ),
                (
                    "orderdate".into(),
                    Column::from_dates(data.orders.iter().map(|o| o.orderdate).collect()),
                    true,
                ),
                (
                    "orderpriority".into(),
                    str_col(data.orders.iter().map(|o| o.orderpriority.as_str()), true),
                    true,
                ),
                ("clerk".into(), str_col(data.orders.iter().map(|o| o.clerk.as_str()), true), true),
                (
                    "shippriority".into(),
                    str_col(data.orders.iter().map(|o| o.shippriority.as_str()), true),
                    true,
                ),
            ],
        });
    }
    {
        let head = Column::from_oids(data.items.iter().map(|i| i.oid).collect());
        let dates = |f: fn(&crate::gen::ItemRow) -> Date| -> Column {
            Column::from_dates(data.items.iter().map(f).collect())
        };
        classes.push(ClassBats {
            class: "Item".into(),
            head,
            attrs: vec![
                (
                    "part".into(),
                    Column::from_oids(data.items.iter().map(|i| i.part).collect()),
                    true,
                ),
                (
                    "supplier".into(),
                    Column::from_oids(data.items.iter().map(|i| i.supplier).collect()),
                    true,
                ),
                (
                    "order".into(),
                    Column::from_oids(data.items.iter().map(|i| i.order).collect()),
                    true,
                ),
                (
                    "quantity".into(),
                    Column::from_ints(data.items.iter().map(|i| i.quantity).collect()),
                    true,
                ),
                (
                    "returnflag".into(),
                    Column::from_chrs(data.items.iter().map(|i| i.returnflag).collect()),
                    true,
                ),
                (
                    "linestatus".into(),
                    Column::from_chrs(data.items.iter().map(|i| i.linestatus).collect()),
                    true,
                ),
                (
                    "extendedprice".into(),
                    Column::from_dbls(data.items.iter().map(|i| i.extendedprice).collect()),
                    true,
                ),
                (
                    "discount".into(),
                    Column::from_dbls(data.items.iter().map(|i| i.discount).collect()),
                    true,
                ),
                ("tax".into(), Column::from_dbls(data.items.iter().map(|i| i.tax).collect()), true),
                ("shipdate".into(), dates(|i| i.shipdate), true),
                ("commitdate".into(), dates(|i| i.commitdate), true),
                ("receiptdate".into(), dates(|i| i.receiptdate), true),
                (
                    "shipmode".into(),
                    str_col(data.items.iter().map(|i| i.shipmode.as_str()), true),
                    true,
                ),
                (
                    "shipinstruct".into(),
                    str_col(data.items.iter().map(|i| i.shipinstruct.as_str()), true),
                    true,
                ),
            ],
        });
    }
    report.bulk_ms = t0.elapsed().as_secs_f64() * 1e3;

    // ---- Phase 2: extents and datavectors --------------------------------
    let t1 = Instant::now();
    let mut db = Db::new();
    struct Prepared {
        name: String,
        bat: Bat,
        dv: Option<Arc<Datavector>>,
    }
    let mut prepared: Vec<Prepared> = Vec::new();
    for cb in &classes {
        let extent_accel = Extent::new(cb.head.clone());
        // extent[oid, void] — registered under the class name. The supply
        // pseudo-class has no extent in the catalog naming scheme; skip it.
        if cb.class != "Supplier_supplies" {
            let extent_bat = Bat::with_props(
                cb.head.clone(),
                Column::void(0, cb.head.len()),
                Props::new(ColProps::DENSE, ColProps::DENSE),
            );
            db.register(&cb.class, extent_bat);
        }
        for (attr, tail, accel) in &cb.attrs {
            // Encoded layouts are a load-time decision (`FLATALG_ENC=0`
            // keeps the raw Phase-1 columns byte for byte — the
            // encodings-off oracle leg). `encode(false)` picks dict/FOR
            // only where it shrinks the column; the Phase-3 reorder
            // gathers codes/deltas, so the sorted attribute BATs stay
            // encoded.
            let tail = if monet::enc::enc_enabled() { tail.encode(false) } else { tail.clone() };
            let dv = if *accel {
                report.dv_bytes += tail.bytes();
                Some(Arc::new(Datavector::new(Arc::clone(&extent_accel), tail.clone())))
            } else {
                None
            };
            prepared.push(Prepared {
                name: format!("{}_{}", cb.class, attr),
                bat: Bat::with_props(
                    cb.head.clone(),
                    tail.clone(),
                    Props::new(ColProps::DENSE, tail_props(&tail)),
                ),
                dv,
            });
        }
    }
    report.accel_ms = t1.elapsed().as_secs_f64() * 1e3;

    // ---- Phase 3: reorder on tail, attach accelerators -------------------
    let t2 = Instant::now();
    for p in prepared {
        let mut bat = if p.bat.props().tail.sorted {
            p.bat
        } else {
            let perm = p.bat.tail().sort_perm();
            let head = p.bat.head().gather(&perm);
            let tail = p.bat.tail().gather(&perm);
            let strict =
                (1..tail.len()).all(|i| tail.cmp_at(i - 1, &tail, i) == std::cmp::Ordering::Less);
            Bat::with_props(
                head,
                tail,
                Props::new(
                    ColProps { sorted: false, key: true, dense: false, ..ColProps::NONE },
                    ColProps { sorted: true, key: strict, dense: false, ..ColProps::NONE },
                ),
            )
        };
        if let Some(dv) = p.dv {
            bat.set_datavector(dv);
        }
        db.register(&p.name, bat);
    }

    // Set-valued attribute plumbing:
    // Supplier_supplies is both the member prefix (registered above) and
    // the index BAT [supply_id, supplier_oid].
    {
        let head = Column::from_oids(data.supplies.iter().map(|s| s.oid).collect());
        let tail = Column::from_oids(data.supplies.iter().map(|s| s.supplier).collect());
        let props = Props::new(ColProps::DENSE, tail_props(&tail));
        db.register("Supplier_supplies", Bat::with_props(head, tail, props));
    }
    // Customer.orders: index [order_oid, customer_oid] + self-reference.
    {
        let head = Column::from_oids(data.orders.iter().map(|o| o.oid).collect());
        let tail = Column::from_oids(data.orders.iter().map(|o| o.cust).collect());
        let props = Props::new(ColProps::DENSE, tail_props(&tail));
        db.register("Customer_orders", Bat::with_props(head.clone(), tail, props));
        db.register(
            "Customer_orders_ref",
            Bat::with_props(head.clone(), head, Props::new(ColProps::DENSE, ColProps::DENSE)),
        );
    }
    // Order.items: index [item_oid, order_oid] + self-reference.
    {
        let head = Column::from_oids(data.items.iter().map(|i| i.oid).collect());
        let tail = Column::from_oids(data.items.iter().map(|i| i.order).collect());
        let props = Props::new(ColProps::DENSE, tail_props(&tail));
        db.register("Order_items", Bat::with_props(head.clone(), tail, props));
        db.register(
            "Order_items_ref",
            Bat::with_props(head.clone(), head, Props::new(ColProps::DENSE, ColProps::DENSE)),
        );
    }
    report.reorder_ms = t2.elapsed().as_secs_f64() * 1e3;
    report.base_bytes = db.bytes();
    report.bat_count = db.len();

    (Catalog::new(tpcd_schema(), db), report)
}

/// Load the generated data into the n-ary baseline store, with inverted
/// lists on the selection attributes the TPC-D queries use.
///
/// Panics on a malformed world; use [`try_load_rowstore`] when the data
/// does not come straight from [`crate::gen::generate`].
pub fn load_rowstore(data: &TpcdData) -> RelDb {
    try_load_rowstore(data).unwrap_or_else(|e| panic!("{e}"))
}

/// Validate the world (see [`validate`]) and load the n-ary baseline.
pub fn try_load_rowstore(data: &TpcdData) -> crate::error::Result<RelDb> {
    validate(data)?;
    Ok(load_rowstore_unchecked(data))
}

fn load_rowstore_unchecked(data: &TpcdData) -> RelDb {
    let mut db = RelDb::new();

    db.add_table(Table::new(
        "region",
        vec![
            ("oid".into(), Column::from_oids(data.regions.iter().map(|r| r.oid).collect())),
            ("name".into(), str_col(data.regions.iter().map(|r| r.name.as_str()), false)),
        ],
    ));
    db.add_table(Table::new(
        "nation",
        vec![
            ("oid".into(), Column::from_oids(data.nations.iter().map(|n| n.oid).collect())),
            ("name".into(), str_col(data.nations.iter().map(|n| n.name.as_str()), false)),
            ("region".into(), Column::from_oids(data.nations.iter().map(|n| n.region).collect())),
        ],
    ));
    db.add_table(Table::new(
        "part",
        vec![
            ("oid".into(), Column::from_oids(data.parts.iter().map(|p| p.oid).collect())),
            ("name".into(), str_col(data.parts.iter().map(|p| p.name.as_str()), true)),
            (
                "manufacturer".into(),
                str_col(data.parts.iter().map(|p| p.manufacturer.as_str()), true),
            ),
            ("brand".into(), str_col(data.parts.iter().map(|p| p.brand.as_str()), true)),
            ("type".into(), str_col(data.parts.iter().map(|p| p.typ.as_str()), true)),
            ("size".into(), Column::from_ints(data.parts.iter().map(|p| p.size).collect())),
            ("container".into(), str_col(data.parts.iter().map(|p| p.container.as_str()), true)),
            (
                "retailprice".into(),
                Column::from_dbls(data.parts.iter().map(|p| p.retailprice).collect()),
            ),
        ],
    ));
    db.add_table(Table::new(
        "supplier",
        vec![
            ("oid".into(), Column::from_oids(data.suppliers.iter().map(|s| s.oid).collect())),
            ("name".into(), str_col(data.suppliers.iter().map(|s| s.name.as_str()), false)),
            ("address".into(), str_col(data.suppliers.iter().map(|s| s.address.as_str()), false)),
            ("phone".into(), str_col(data.suppliers.iter().map(|s| s.phone.as_str()), false)),
            (
                "acctbal".into(),
                Column::from_dbls(data.suppliers.iter().map(|s| s.acctbal).collect()),
            ),
            ("nation".into(), Column::from_oids(data.suppliers.iter().map(|s| s.nation).collect())),
        ],
    ));
    db.add_table(Table::new(
        "partsupp",
        vec![
            ("oid".into(), Column::from_oids(data.supplies.iter().map(|s| s.oid).collect())),
            (
                "supplier".into(),
                Column::from_oids(data.supplies.iter().map(|s| s.supplier).collect()),
            ),
            ("part".into(), Column::from_oids(data.supplies.iter().map(|s| s.part).collect())),
            ("cost".into(), Column::from_dbls(data.supplies.iter().map(|s| s.cost).collect())),
            (
                "available".into(),
                Column::from_ints(data.supplies.iter().map(|s| s.available).collect()),
            ),
        ],
    ));
    db.add_table(Table::new(
        "customer",
        vec![
            ("oid".into(), Column::from_oids(data.customers.iter().map(|c| c.oid).collect())),
            ("name".into(), str_col(data.customers.iter().map(|c| c.name.as_str()), false)),
            ("address".into(), str_col(data.customers.iter().map(|c| c.address.as_str()), false)),
            ("phone".into(), str_col(data.customers.iter().map(|c| c.phone.as_str()), false)),
            (
                "acctbal".into(),
                Column::from_dbls(data.customers.iter().map(|c| c.acctbal).collect()),
            ),
            ("nation".into(), Column::from_oids(data.customers.iter().map(|c| c.nation).collect())),
            (
                "mktsegment".into(),
                str_col(data.customers.iter().map(|c| c.mktsegment.as_str()), true),
            ),
        ],
    ));
    db.add_table(Table::new(
        "orders",
        vec![
            ("oid".into(), Column::from_oids(data.orders.iter().map(|o| o.oid).collect())),
            ("cust".into(), Column::from_oids(data.orders.iter().map(|o| o.cust).collect())),
            ("status".into(), Column::from_chrs(data.orders.iter().map(|o| o.status).collect())),
            (
                "totalprice".into(),
                Column::from_dbls(data.orders.iter().map(|o| o.totalprice).collect()),
            ),
            (
                "orderdate".into(),
                Column::from_dates(data.orders.iter().map(|o| o.orderdate).collect()),
            ),
            (
                "orderpriority".into(),
                str_col(data.orders.iter().map(|o| o.orderpriority.as_str()), true),
            ),
            ("clerk".into(), str_col(data.orders.iter().map(|o| o.clerk.as_str()), true)),
            (
                "shippriority".into(),
                str_col(data.orders.iter().map(|o| o.shippriority.as_str()), true),
            ),
        ],
    ));
    db.add_table(Table::new(
        "lineitem",
        vec![
            ("oid".into(), Column::from_oids(data.items.iter().map(|i| i.oid).collect())),
            ("part".into(), Column::from_oids(data.items.iter().map(|i| i.part).collect())),
            ("supplier".into(), Column::from_oids(data.items.iter().map(|i| i.supplier).collect())),
            ("order".into(), Column::from_oids(data.items.iter().map(|i| i.order).collect())),
            ("quantity".into(), Column::from_ints(data.items.iter().map(|i| i.quantity).collect())),
            (
                "returnflag".into(),
                Column::from_chrs(data.items.iter().map(|i| i.returnflag).collect()),
            ),
            (
                "linestatus".into(),
                Column::from_chrs(data.items.iter().map(|i| i.linestatus).collect()),
            ),
            (
                "extendedprice".into(),
                Column::from_dbls(data.items.iter().map(|i| i.extendedprice).collect()),
            ),
            ("discount".into(), Column::from_dbls(data.items.iter().map(|i| i.discount).collect())),
            ("tax".into(), Column::from_dbls(data.items.iter().map(|i| i.tax).collect())),
            (
                "shipdate".into(),
                Column::from_dates(data.items.iter().map(|i| i.shipdate).collect()),
            ),
            (
                "commitdate".into(),
                Column::from_dates(data.items.iter().map(|i| i.commitdate).collect()),
            ),
            (
                "receiptdate".into(),
                Column::from_dates(data.items.iter().map(|i| i.receiptdate).collect()),
            ),
            ("shipmode".into(), str_col(data.items.iter().map(|i| i.shipmode.as_str()), true)),
            (
                "shipinstruct".into(),
                str_col(data.items.iter().map(|i| i.shipinstruct.as_str()), true),
            ),
        ],
    ));

    // Inverted lists on the benchmark's selection attributes.
    for (t, c) in [
        ("lineitem", "shipdate"),
        ("lineitem", "returnflag"),
        ("lineitem", "order"),
        ("orders", "orderdate"),
        ("orders", "clerk"),
        ("orders", "oid"),
        ("customer", "mktsegment"),
        ("customer", "oid"),
        ("part", "type"),
        ("part", "size"),
        ("part", "oid"),
        ("supplier", "oid"),
        ("nation", "name"),
        ("nation", "oid"),
        ("region", "name"),
        ("partsupp", "part"),
    ] {
        db.build_index(t, c);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use monet::atom::AtomValue;
    use monet::ctx::ExecCtx;

    fn small() -> TpcdData {
        generate(0.001, 42)
    }

    #[test]
    fn malformed_scale_factor_is_a_typed_error() {
        for sf in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = crate::gen::try_generate(sf, 42).unwrap_err();
            assert!(matches!(err, TpcdError::InvalidScaleFactor { .. }), "sf {sf}: got {err}");
        }
    }

    #[test]
    fn truncated_world_is_rejected_not_loaded() {
        // Dropping the tail of `customers` leaves orders referencing
        // missing objects: the loader must refuse with a typed error
        // naming the offending table, not build a catalog of lies.
        let mut data = small();
        data.customers.truncate(data.customers.len() / 2);
        let err = try_load_bats(&data).err().expect("load must fail");
        assert!(
            matches!(err, TpcdError::Malformed { table: "Order", .. }),
            "expected a dangling Order.cust, got {err}"
        );
        assert!(try_load_rowstore(&data).is_err());
    }

    #[test]
    fn non_dense_extent_is_rejected() {
        let mut data = small();
        data.items.remove(3); // punch a hole in the Item extent
        let err = try_load_bats(&data).err().expect("load must fail");
        assert!(
            matches!(err, TpcdError::Malformed { table: "Item", .. }),
            "expected a dense-extent violation, got {err}"
        );
    }

    #[test]
    fn owner_unsorted_set_index_is_rejected() {
        let mut data = small();
        let last = data.supplies.len() - 1;
        // Swap the *owners* (keeping element oids dense) so only the
        // owner-sort invariant breaks.
        let (a, b) = (data.supplies[0].supplier, data.supplies[last].supplier);
        assert_ne!(a, b, "seed must spread owners for this test");
        data.supplies[0].supplier = b;
        data.supplies[last].supplier = a;
        let err = try_load_bats(&data).err().expect("load must fail");
        assert!(
            matches!(err, TpcdError::Malformed { table: "Supplier_supplies", .. }),
            "expected an owner-sort violation, got {err}"
        );
    }

    #[test]
    fn empty_world_is_rejected() {
        let mut data = small();
        data.orders.clear();
        let err = try_load_bats(&data).err().expect("load must fail");
        assert!(matches!(err, TpcdError::Malformed { table: "Order", .. }), "got {err}");
    }

    #[test]
    fn valid_world_passes_validation() {
        assert_eq!(validate(&small()), Ok(()));
    }

    #[test]
    fn loads_all_bats() {
        let data = small();
        let (cat, report) = load_bats(&data);
        assert!(report.bat_count > 45, "only {} BATs", report.bat_count);
        assert!(report.base_bytes > 0);
        assert!(report.dv_bytes > 0);
        // Every schema attribute resolves.
        for class in ["Region", "Nation", "Part", "Supplier", "Customer", "Order", "Item"] {
            assert!(cat.extent(class).is_ok(), "extent {class}");
        }
        assert_eq!(cat.extent("Item").unwrap().len(), data.items.len());
        assert!(cat.member_field("Supplier", "supplies", "cost").is_ok());
        assert!(cat.member_field("Customer", "orders", "ref").is_ok());
        assert!(cat.member_field("Order", "items", "ref").is_ok());
    }

    #[test]
    fn attribute_bats_are_tail_sorted_with_datavectors() {
        let data = small();
        let (cat, _) = load_bats(&data);
        for name in ["Item_shipdate", "Order_clerk", "Item_extendedprice", "Part_size"] {
            let bat = cat.db().get(name).unwrap();
            assert!(bat.props().tail.sorted, "{name} not tail-sorted");
            assert!(bat.accel().datavector.is_some(), "{name} has no datavector");
            assert!(bat.validate().is_ok(), "{name} props invalid");
        }
    }

    #[test]
    fn datavectors_share_class_extent() {
        let data = small();
        let (cat, _) = load_bats(&data);
        let a = cat.db().get("Item_extendedprice").unwrap();
        let b = cat.db().get("Item_discount").unwrap();
        let (da, db_) =
            (a.accel().datavector.as_ref().unwrap(), b.accel().datavector.as_ref().unwrap());
        assert!(Arc::ptr_eq(da.extent(), db_.extent()), "extents must be shared");
    }

    #[test]
    fn figure3_structure_builds_and_materializes() {
        let data = small();
        let (cat, _) = load_bats(&data);
        let s = cat.class_structure("Supplier").unwrap();
        let rendered = s.inner.render();
        assert!(rendered.contains("OBJECT[Supplier]"));
        assert!(rendered.contains("SET(index, TUPLE(part:ref[Part]"));
        let vals = s.materialize().unwrap();
        assert_eq!(vals.len(), data.suppliers.len());
    }

    #[test]
    fn clerk_selection_matches_generator() {
        let data = small();
        let (cat, _) = load_bats(&data);
        let clerk = data.orders[0].clerk.clone();
        let expected = data.orders.iter().filter(|o| o.clerk == clerk).count();
        let ctx = ExecCtx::new();
        let bat = cat.db().get("Order_clerk").unwrap();
        let sel = monet::ops::select_eq(&ctx, bat, &AtomValue::str(clerk.as_str())).unwrap();
        assert_eq!(sel.len(), expected);
        assert!(expected > 0);
    }

    #[test]
    fn rowstore_matches_cardinalities() {
        let data = small();
        let rel = load_rowstore(&data);
        assert_eq!(rel.table("lineitem").rows(), data.items.len());
        assert_eq!(rel.table("orders").rows(), data.orders.len());
        assert_eq!(rel.table("partsupp").rows(), data.supplies.len());
        assert!(rel.index("lineitem", "shipdate").is_some());
        assert!(rel.bytes() > 0);
    }

    #[test]
    fn set_indexes_consistent() {
        let data = small();
        let (cat, _) = load_bats(&data);
        let idx = cat.set_index("Supplier", "supplies").unwrap();
        assert_eq!(idx.len(), data.supplies.len());
        assert!(idx.props().tail.sorted, "owner-sorted supplies index");
        let oi = cat.set_index("Order", "items").unwrap();
        assert_eq!(oi.len(), data.items.len());
    }
}
