//! Persisting a loaded TPC-D catalog with `monet::store`.
//!
//! [`save_catalog`] serializes a loaded world's BATs (shared columns,
//! property bits, datavector wiring) into a store directory, so a world
//! is generated and loaded once (`flatalg-store build`) and every later
//! run opens it in O(1) via [`open_catalog`], which mmaps the column
//! files and rebinds them to the MOA schema.
//!
//! Opening is all-or-nothing: the kernel fully validates the store
//! (magic, version, checksums, bounds, descriptor consistency, kernel
//! safety invariants) *and* this module resolves every schema class
//! structure before a [`Catalog`] is returned — a corrupt or incomplete
//! store yields a typed [`TpcdError::Store`] and no catalog at all, never
//! a partially registered one.
//!
//! The opened catalog sits on a fresh [`monet::db::Db`] with a fresh
//! process-unique id, so plan caches keyed on `(db id, epoch)` can never
//! confuse it with a same-named in-memory world.

use std::path::Path;

use moa::catalog::Catalog;
use monet::error::MonetError;
use monet::gov::Governor;
use monet::store::{open_dir, write_dir, OpenOptions, WriteStats};

use crate::error::{Result, TpcdError};
use crate::schema::tpcd_schema;

/// An opened persistent catalog plus the open statistics.
pub struct OpenedCatalog {
    pub catalog: Catalog,
    /// Scale factor recorded when the store was built.
    pub sf: f64,
    /// Total bytes of column files mapped.
    pub mapped_bytes: u64,
    /// Number of column files mapped.
    pub files: usize,
    /// True when every column file is a real `mmap` (false = heap read).
    pub mmap: bool,
}

/// Serialize a loaded catalog into `dir` (see [`monet::store::write_dir`]).
pub fn save_catalog(dir: &Path, cat: &Catalog, sf: f64) -> Result<WriteStats> {
    write_dir(dir, cat.db(), sf).map_err(TpcdError::from)
}

/// Open a store directory written by [`save_catalog`] and rebind it to the
/// TPC-D schema. All-or-nothing: validates the files *and* resolves every
/// class structure before returning; on any failure no catalog exists.
pub fn open_catalog(
    dir: &Path,
    gov: Option<&Governor>,
    opts: &OpenOptions,
) -> Result<OpenedCatalog> {
    let opened = open_dir(dir, gov, opts)?;
    let catalog = Catalog::new(tpcd_schema(), opened.db);
    // The kernel validated the files; now prove the BAT set is complete
    // for the schema (every extent, attribute, set index and member field
    // resolves) before handing the catalog out.
    let classes: Vec<String> = catalog.schema().classes().map(|c| c.name.clone()).collect();
    for class in &classes {
        if let Err(e) = catalog.class_structure(class) {
            return Err(TpcdError::Store(MonetError::Store {
                op: "store/open",
                path: dir.display().to_string(),
                detail: format!("store does not cover class {class}: {e}"),
            }));
        }
    }
    Ok(OpenedCatalog {
        catalog,
        sf: opened.sf,
        mapped_bytes: opened.mapped_bytes,
        files: opened.files,
        mmap: opened.mmap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::load::load_bats;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("flatalg-tpcd-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_open_round_trips_the_catalog() {
        let data = generate(0.001, 42);
        let (cat, _) = load_bats(&data);
        let dir = tmpdir("roundtrip");
        let stats = save_catalog(&dir, &cat, 0.001).expect("save");
        assert!(stats.files > 1 && stats.bytes > 0);
        let opened = open_catalog(&dir, None, &OpenOptions { verify_data: true }).expect("open");
        assert_eq!(opened.sf, 0.001);
        assert_eq!(opened.catalog.db().len(), cat.db().len());
        // Fresh identity: the plan cache must never alias the two worlds.
        assert_ne!(opened.catalog.db().id(), cat.db().id());
        for class in ["Region", "Nation", "Part", "Supplier", "Customer", "Order", "Item"] {
            assert_eq!(
                opened.catalog.extent(class).unwrap().len(),
                cat.extent(class).unwrap().len(),
                "extent {class}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_store_is_all_or_nothing() {
        // A store that is *valid* as files but misses schema BATs must be
        // rejected with a typed error, not returned partially bound.
        let data = generate(0.001, 42);
        let (cat, _) = load_bats(&data);
        let mut db = monet::db::Db::new();
        // Copy everything except one schema-required attribute BAT.
        for (name, bat) in cat.db().iter() {
            if name != "Item_shipdate" {
                db.register(name, bat.clone());
            }
        }
        let dir = tmpdir("incomplete");
        monet::store::write_dir(&dir, &db, 0.001).expect("save");
        let err = open_catalog(&dir, None, &OpenOptions::default()).err().expect("must fail");
        match err {
            TpcdError::Store(MonetError::Store { op, detail, .. }) => {
                assert_eq!(op, "store/open");
                assert!(detail.contains("Item"), "detail: {detail}");
            }
            other => panic!("expected a store error, got {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_a_typed_error() {
        let err =
            open_catalog(Path::new("/nonexistent/flatalg-store"), None, &OpenOptions::default())
                .err()
                .expect("must fail");
        assert!(matches!(err, TpcdError::Store(MonetError::Store { .. })), "got {err}");
    }
}
