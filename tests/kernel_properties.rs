//! Property tests of the kernel invariants:
//!
//! * every operator's claimed descriptor properties actually hold
//!   (`Bat::validate` — the "actively guarded" properties of Section 5.1);
//! * the alternative implementations every operator dispatches between
//!   agree with each other;
//! * mirror/slice algebra.

use monet::atom::AtomValue;
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops;
use monet::props::{ColProps, Props};
use proptest::prelude::*;

fn small_bat() -> impl Strategy<Value = Bat> {
    proptest::collection::vec((0u64..40, -20i32..20), 0..40).prop_map(|pairs| {
        Bat::new(
            Column::from_oids(pairs.iter().map(|p| p.0).collect()),
            Column::from_ints(pairs.iter().map(|p| p.1).collect()),
        )
    })
}

fn oid_selection() -> impl Strategy<Value = Bat> {
    proptest::collection::btree_set(0u64..40, 0..20).prop_map(|set| {
        let oids: Vec<u64> = set.into_iter().collect();
        let n = oids.len();
        Bat::with_inferred_props(Column::from_oids(oids), Column::void(0, n))
    })
}

fn sorted_pairs(b: &Bat) -> Vec<(u64, i32)> {
    let mut v: Vec<(u64, i32)> =
        (0..b.len()).map(|i| (b.head().oid_at(i), b.tail().int_at(i))).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_variants_agree_and_validate(b in small_bat(), v in -20i32..20) {
        let ctx = ExecCtx::new();
        // scan on the raw bat
        let scan = ops::select_eq(&ctx, &b, &AtomValue::Int(v)).unwrap();
        prop_assert!(scan.validate().is_ok());
        // binary search on the tail-sorted version
        let sorted = ops::sort_tail(&ctx, &b).unwrap();
        prop_assert!(sorted.validate().is_ok());
        let bs = ops::select_eq(&ctx, &sorted, &AtomValue::Int(v)).unwrap();
        prop_assert!(bs.validate().is_ok());
        prop_assert_eq!(sorted_pairs(&scan), sorted_pairs(&bs));
        // hash accelerator
        let mut hashed = b.clone();
        hashed.set_tail_hash(std::sync::Arc::new(
            monet::accel::hash::HashIndex::build(b.tail()),
        ));
        let hs = ops::select_eq(&ctx, &hashed, &AtomValue::Int(v)).unwrap();
        prop_assert_eq!(sorted_pairs(&scan), sorted_pairs(&hs));
    }

    #[test]
    fn semijoin_variants_agree(b in small_bat(), sel in oid_selection()) {
        let ctx = ExecCtx::new();
        let hash = ops::semijoin(&ctx, &b, &sel).unwrap();
        prop_assert!(hash.validate().is_ok());
        // merge variant via head sort
        let hsorted = ops::sort_head(&ctx, &b).unwrap();
        let merge = ops::semijoin(&ctx, &hsorted, &sel).unwrap();
        prop_assert_eq!(sorted_pairs(&hash), sorted_pairs(&merge));
        // datavector variant — only defined for attribute BATs with
        // unique oids (the extent is duplicate-free by construction)
        if b.head().check_key() {
            let mut with_dv = b.clone();
            with_dv.set_datavector(std::sync::Arc::new(
                monet::accel::datavector::Datavector::from_unordered(&b),
            ));
            let dv = ops::semijoin(&ctx, &with_dv, &sel).unwrap();
            prop_assert_eq!(sorted_pairs(&hash), sorted_pairs(&dv));
        }
        // semijoin + antijoin partition the left operand
        let anti = ops::antijoin(&ctx, &b, &sel).unwrap();
        prop_assert_eq!(hash.len() + anti.len(), b.len());
    }

    #[test]
    fn join_variants_agree(b in small_bat(), r in small_bat()) {
        let ctx = ExecCtx::new();
        // join on oid tail vs oid head: use mirror of r as [int, oid] — we
        // need comparable columns, so join b.mirror [int, oid] with r [oid, int].
        let left = b.mirror();
        let hash = ops::join(&ctx, &left, &r).unwrap();
        prop_assert!(hash.validate().is_ok());
        let lsorted = ops::sort_tail(&ctx, &left).unwrap();
        let rsorted = ops::sort_head(&ctx, &r).unwrap();
        let merge = ops::join(&ctx, &lsorted, &rsorted).unwrap();
        let norm = |x: &Bat| {
            let mut v: Vec<(i32, i32)> =
                (0..x.len()).map(|i| (x.head().int_at(i), x.tail().int_at(i))).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(norm(&hash), norm(&merge));
    }

    #[test]
    fn group_then_aggregate_counts(b in small_bat()) {
        let ctx = ExecCtx::new();
        let g = ops::group1(&ctx, &b).unwrap();
        prop_assert!(g.synced(&b));
        // number of groups == distinct tail values
        let mut distinct: Vec<i32> = (0..b.len()).map(|i| b.tail().int_at(i)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let counts = ops::set_aggregate(&ctx, ops::AggFunc::Count, &g.mirror()).unwrap();
        prop_assert_eq!(counts.len(), distinct.len());
        // total of counts == |b|
        let total: i64 = (0..counts.len()).map(|i| counts.tail().lng_at(i)).sum();
        prop_assert_eq!(total as usize, b.len());
    }

    #[test]
    fn mirror_involution_and_slice(b in small_bat(), start in 0usize..10, len in 0usize..10) {
        let m = b.mirror().mirror();
        prop_assert_eq!(sorted_pairs(&b), sorted_pairs(&m));
        if start + len <= b.len() {
            let s = b.slice(start, len);
            prop_assert!(s.validate().is_ok());
            prop_assert_eq!(s.len(), len);
            for i in 0..len {
                prop_assert_eq!(s.head().oid_at(i), b.head().oid_at(start + i));
            }
        }
    }

    #[test]
    fn unique_is_idempotent_set(b in small_bat()) {
        let ctx = ExecCtx::new();
        let u1 = ops::unique(&ctx, &b).unwrap();
        let u2 = ops::unique(&ctx, &u1).unwrap();
        prop_assert_eq!(sorted_pairs(&u1), sorted_pairs(&u2));
        let mut expect = sorted_pairs(&b);
        expect.dedup();
        prop_assert_eq!(sorted_pairs(&u1), expect);
    }

    #[test]
    fn setops_algebra(a in small_bat(), b in small_bat()) {
        let ctx = ExecCtx::new();
        let u = ops::union_pairs(&ctx, &a, &b).unwrap();
        let i = ops::intersect_pairs(&ctx, &a, &b).unwrap();
        let da = ops::diff_pairs(&ctx, &a, &b).unwrap();
        let db = ops::diff_pairs(&ctx, &b, &a).unwrap();
        let ua = ops::unique(&ctx, &a).unwrap();
        let ub = ops::unique(&ctx, &b).unwrap();
        // |A∪B| = |A\B| + |B\A| + |A∩B| over *distinct* pairs
        let mut i_dedup = sorted_pairs(&i);
        i_dedup.dedup();
        let mut da_dedup = sorted_pairs(&da);
        da_dedup.dedup();
        let mut db_dedup = sorted_pairs(&db);
        db_dedup.dedup();
        prop_assert_eq!(u.len(), da_dedup.len() + db_dedup.len() + i_dedup.len());
        let _ = (ua, ub);
    }

    #[test]
    fn topn_returns_extremes(b in small_bat(), n in 1usize..10) {
        let ctx = ExecCtx::new();
        let top = ops::topn(&ctx, &b, n, true).unwrap();
        prop_assert_eq!(top.len(), n.min(b.len()));
        if !top.is_empty() {
            let max_all = (0..b.len()).map(|i| b.tail().int_at(i)).max().unwrap();
            prop_assert_eq!(top.tail().int_at(0), max_all);
        }
    }

    #[test]
    fn props_claims_always_sound(b in small_bat()) {
        // Randomized pipeline: each step must keep validate() green.
        let ctx = ExecCtx::new();
        let s = ops::sort_tail(&ctx, &b).unwrap();
        prop_assert!(s.validate().is_ok());
        let sel = ops::select_range(
            &ctx, &s, Some(&AtomValue::Int(-10)), Some(&AtomValue::Int(10)), true, true,
        ).unwrap();
        prop_assert!(sel.validate().is_ok());
        let g = ops::group1(&ctx, &sel).unwrap();
        prop_assert!(g.validate().is_ok());
        let m = ops::mark(&ctx, &g, None).unwrap();
        prop_assert!(m.validate().is_ok());
        prop_assert!(m.props().tail.dense);
    }
}

#[test]
fn zip_and_concat_roundtrip() {
    let ctx = ExecCtx::new();
    let head = Column::from_oids(vec![1, 2, 3]);
    let a = Bat::new(head.clone(), Column::from_ints(vec![10, 20, 30]));
    let b = Bat::new(head, Column::from_strs(["x", "y", "z"]));
    let z = ops::zip(&ctx, &a, &b).unwrap();
    assert_eq!(z.head().as_int_slice().unwrap(), &[10, 20, 30]);
    let c = ops::concat_bats(&ctx, &a, &a).unwrap();
    assert_eq!(c.len(), 6);
}

#[test]
fn pager_cold_vs_warm() {
    let pager = std::sync::Arc::new(monet::pager::Pager::new(4096));
    let ctx = ExecCtx::new().with_pager(std::sync::Arc::clone(&pager));
    let b = Bat::with_props(
        Column::from_oids((0..50_000).collect()),
        Column::from_ints((0..50_000).map(|i| i as i32).collect()),
        Props::new(ColProps::DENSE, ColProps::SORTED_KEY),
    );
    let _ = ops::select_eq(&ctx, &b, &AtomValue::Int(777)).unwrap();
    let cold = pager.faults();
    assert!(cold > 0);
    let _ = ops::select_eq(&ctx, &b, &AtomValue::Int(777)).unwrap();
    assert_eq!(pager.faults(), cold, "warm re-run must not fault");
}
