//! The `FLATALG_FAULT=site:count` environment knob, end to end: every new
//! context in the process arms the same deterministic countdown, so every
//! session's first statement hits the injected fault at the same governed
//! point — and, the injector being one-shot per governor, the immediate
//! retry on the same session runs clean.
//!
//! Own one-test binary: the spec is parsed once per process, so it must
//! be set before the first `ExecCtx` exists.

use flatalg_server::{Server, ServerConfig};
use moa::error::MoaError;
use monet::error::MonetError;
use tpcd_queries::all_queries;

#[test]
fn env_fault_arms_every_session_and_retry_runs_clean() {
    if std::env::var("FLATALG_FAULT").is_err() {
        std::env::set_var("FLATALG_FAULT", "mil/stmt:2");
    }
    let w = bench::World::build(0.002);
    let queries = all_queries();
    let q1 = &queries[0];
    let server = Server::with_config(
        &w.cat,
        ServerConfig { max_concurrent: 2, plan_cache: Some(64), ..ServerConfig::default() },
    );

    // Two independent sessions: both arm from the env, both fire on the
    // first statement, both recover on retry — bit-identically.
    let mut retries = Vec::new();
    for _ in 0..2 {
        let session = server.session();
        match session.run_query(q1, &w.params) {
            Err(MoaError::Kernel(MonetError::Injected { .. })) => {}
            other => panic!("env-armed session must hit the injected fault, got {other:?}"),
        }
        retries.push(session.run_query(q1, &w.params).unwrap());
    }
    assert_eq!(retries[0], retries[1], "post-fault retries must be bit-identical");
    assert!(!retries[0].is_empty(), "Q1 must produce rows");
    assert_eq!(server.stats().failed, 2);
}
