//! Deterministic fault-injection sweep over the Q1–Q15 workload.
//!
//! Every governed point of a query — operator entries, the interpreter's
//! per-statement probe, and the morsel/task boundaries of the parallel
//! executor — must fail *cleanly* when a fault fires there: the query
//! returns a typed error, concurrent sessions are unaffected, the
//! admission gate and worker pool stay usable, the plan cache serves no
//! partially-built entry, and an immediate retry on the same session is
//! bit-identical to the uninjected oracle.
//!
//! The sweep leans on two determinism guarantees proved by PR 4/5: a
//! query's probe *count* is a pure function of data and parallel config
//! (morsel boundaries are properties of the operand, not the schedule),
//! and the injector fires at exactly the n-th probe arrival. So: run each
//! query once uninjected on a fresh governor to enumerate its N governed
//! points, then inject at successive points and assert clean failure plus
//! bit-identical recovery at each.

use std::sync::OnceLock;

use bench::World;
use flatalg_server::{Server, ServerConfig};
use moa::error::MoaError;
use monet::error::MonetError;
use monet::par;
use tpcd_queries::{all_queries, Query, QueryResult};

/// Small fixed-SF world: big enough that every query exercises parallel
/// regions under the forced config below, small enough that a
/// several-hundred-point sweep stays fast.
fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| World::build(0.002))
}

/// Forced parallel config for every run in this harness: 3 workers, no
/// row threshold (tiny operands still morselize), odd morsel size. This
/// makes the `par/morsel` and `par/task` sites fire on the tiny world and
/// pins the probe count independent of the host's core count.
fn governed<R>(f: impl FnOnce() -> R) -> R {
    par::with_par_config(Some(3), Some(1), Some(509), f)
}

fn server(w: &World) -> Server<'_> {
    Server::with_config(
        &w.cat,
        ServerConfig { max_concurrent: 4, plan_cache: Some(64), ..ServerConfig::default() },
    )
}

/// Injection points to test for a query with `n` governed points: the
/// full sweep when `full`, else a prefix (every early site: translate
/// boundary, first operator entries) plus a geometric spread and the very
/// last probe.
fn sweep_points(n: u64, full: bool) -> Vec<u64> {
    if full {
        return (1..=n).collect();
    }
    let mut ks: Vec<u64> = (1..=n.min(12)).collect();
    let mut k = 18u64;
    while k < n {
        ks.push(k);
        k = k * 3 / 2;
    }
    ks.push(n);
    ks.sort_unstable();
    ks.dedup();
    ks
}

/// The tentpole sweep: for every query, inject at successive governed
/// points (every point for aggregation-heavy Q1 and join-heavy Q5, a
/// dense-prefix-plus-spread sample for the rest) and require a typed
/// `Injected` error plus a bit-identical retry. The shared plan cache
/// must come through the whole sweep without a single re-miss: a failed
/// execution must neither evict nor poison a cached plan.
#[test]
fn fault_sweep_over_query_mix() {
    let w = world();
    // The world loads with encoded layouts on (the default), so this sweep
    // governs the encoded-path probe sites too: dict-code selects,
    // code-groups, and FOR scans all sit behind the same `op/*` probes the
    // injector counts. Under the `FLATALG_ENC=0` oracle leg the same sweep
    // covers the raw paths instead.
    if monet::enc::enc_enabled() {
        assert_eq!(
            w.cat.db().get("Order_clerk").unwrap().tail().encoding(),
            monet::props::Enc::Dict,
            "encoded-layout sweep world must actually hold encoded columns",
        );
    }
    let queries = all_queries();
    let server = server(w);
    governed(|| {
        let session = server.session();
        for q in &queries {
            session.run_query(q, &w.params).unwrap();
        }
    });
    let warm = server.stats().cache.unwrap();

    for q in &queries {
        // Uninjected oracle on a fresh governor, twice: the result and the
        // governed-point count must both be deterministic.
        let (n1, oracle) = oracle_run(&server, q);
        let (n2, again) = oracle_run(&server, q);
        assert_eq!(n1, n2, "q{}: probe count must be deterministic", q.id);
        assert_eq!(oracle, again, "q{}: uninjected runs must be bit-identical", q.id);
        assert!(n1 > 0, "q{}: no governed points — the sweep would prove nothing", q.id);

        for k in sweep_points(n1, q.id == 1 || q.id == 5) {
            let session = server.session();
            session.ctx().gov.arm_fault("*", k);
            match governed(|| session.run_query(q, &w.params)) {
                Err(MoaError::Kernel(MonetError::Injected { hit, .. })) => {
                    assert_eq!(hit, k, "q{}: fault fired at the wrong probe", q.id)
                }
                Err(e) => panic!("q{} k={k}/{n1}: expected injected fault, got: {e}", q.id),
                Ok(_) => panic!("q{} k={k}/{n1}: injected fault did not surface", q.id),
            }
            // One-shot injector: the immediate retry on the same session
            // runs clean and must reproduce the oracle bit-for-bit.
            let retry = governed(|| session.run_query(q, &w.params))
                .unwrap_or_else(|e| panic!("q{} k={k}/{n1}: retry failed: {e}", q.id));
            assert_eq!(retry, oracle, "q{} k={k}/{n1}: retry diverged from oracle", q.id);
        }
    }

    let end = server.stats().cache.unwrap();
    assert_eq!(
        (end.misses, end.len),
        (warm.misses, warm.len),
        "injected failures must not evict, poison, or partially populate cached plans"
    );
    assert_eq!(server.stats().waited, 0, "single-driver sweep must never queue");
}

fn oracle_run<'a>(server: &Server<'a>, q: &Query) -> (u64, QueryResult) {
    let w = world();
    let session = server.session();
    let r = governed(|| session.run_query(q, &w.params)).unwrap();
    (session.ctx().gov.probes(), r)
}

/// Faults are per-session: a victim session absorbing injected faults in
/// a tight loop must not perturb bystander sessions sharing the admission
/// gate, worker pool, and plan cache — and afterwards the victim's
/// session, the gate, and the pool must all still work.
#[test]
fn injected_faults_leave_bystanders_gate_and_pool_unaffected() {
    let w = world();
    let queries = all_queries();
    let server = server(w);
    let (q1, q3, q5) = (&queries[0], &queries[2], &queries[4]);
    let [oracle1, oracle3, oracle5] = [q1, q3, q5].map(|q| {
        let s = server.session();
        governed(|| s.run_query(q, &w.params)).unwrap()
    });

    let rounds = 8usize;
    std::thread::scope(|s| {
        let (server, w) = (&server, &w);
        let (oracle1, oracle3, oracle5) = (&oracle1, &oracle3, &oracle5);
        s.spawn(move || {
            for round in 0..rounds {
                let session = server.session();
                session.ctx().gov.arm_fault("*", 3 + 7 * round as u64);
                match governed(|| session.run_query(q5, &w.params)) {
                    Err(MoaError::Kernel(MonetError::Injected { .. })) => {}
                    other => panic!("victim round {round}: expected injected fault, got {other:?}"),
                }
                let retry = governed(|| session.run_query(q5, &w.params)).unwrap();
                assert_eq!(&retry, oracle5, "victim retry diverged in round {round}");
            }
        });
        for (q, oracle) in [(q1, oracle1), (q3, oracle3)] {
            s.spawn(move || {
                let session = server.session();
                for round in 0..rounds {
                    let got = governed(|| session.run_query(q, &w.params)).unwrap();
                    assert_eq!(&got, oracle, "bystander q{} diverged in round {round}", q.id);
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.failed as usize, rounds, "exactly the injected statements must fail");
    assert_eq!(stats.shed, 0, "no statement may be shed by a neighbor's faults");
    // The gate and pool survived the faults: a fresh session still runs
    // the whole mix.
    let session = server.session();
    for q in &queries {
        governed(|| session.run_query(q, &w.params)).unwrap();
    }
}

/// Encoded-path governance: kernels that run directly on dictionary codes
/// (dict-code select, code-group, unique over encoded tails) probe at
/// entry and must return every scratch buffer on every abort path. Faults
/// injected at successive probes of a kernel chain over a *dict-encoded*
/// column abort cleanly, retry bit-identically on the same context, and
/// leave the process-wide scratch checkout balance at its baseline.
#[test]
fn injected_faults_on_encoded_kernels_abort_cleanly_and_return_scratch() {
    use std::time::{Duration, Instant};

    use monet::ctx::ExecCtx;
    use monet::ops;
    use monet::typed;

    // The fixture is dict-encoded *explicitly* (not via the loader), so
    // this sweep covers the encoded paths under every CI leg — including
    // `FLATALG_ENC=0`, which only disables load-time encoding.
    let n = 4000usize;
    let clerk = &monet::bat::Bat::new(
        monet::column::Column::from_oids((0..n as u64).collect()),
        monet::column::Column::from_strs(
            (0..n).map(|i| format!("Clerk#{:018}", i % 7)).collect::<Vec<_>>(),
        )
        .encode(false),
    );
    assert_eq!(
        clerk.tail().encoding(),
        monet::props::Enc::Dict,
        "fixture must be dict-encoded — otherwise this sweeps the raw paths",
    );
    let probe = clerk.iter().next().unwrap().1;
    let baseline = typed::scratch_checked_out();
    // Uninjected chain on a fresh governor: records the oracle results and
    // enumerates the chain's N governed points, so the sweep below can
    // inject at every one of them (and only them — the injector is armed
    // per-context, so a k past the last probe would leak into the retry).
    let (oracle, n) = {
        let ctx = ExecCtx::new();
        let r = governed(|| {
            let sel = ops::select_eq(&ctx, clerk, &probe).unwrap();
            let grp = ops::group1(&ctx, clerk).unwrap();
            let uni = ops::unique(&ctx, clerk).unwrap();
            (sel.iter().collect::<Vec<_>>(), grp.len(), uni.iter().collect::<Vec<_>>())
        });
        (r, ctx.gov.probes())
    };
    assert!(n >= 3, "chain must pass at least its three operator-entry probes (got {n})");
    let mut aborts = 0usize;
    for k in 1u64..=n {
        let ctx = ExecCtx::new();
        ctx.gov.arm_fault("*", k);
        governed(|| {
            let r = ops::select_eq(&ctx, clerk, &probe)
                .and_then(|_| ops::group1(&ctx, clerk))
                .and_then(|_| ops::unique(&ctx, clerk).map(|_| ()));
            match r {
                Err(MonetError::Injected { hit, .. }) => {
                    assert_eq!(hit, k, "fault fired at the wrong probe");
                    aborts += 1;
                }
                Err(e) => panic!("k={k}: unexpected error {e}"),
                Ok(()) => panic!("k={k}/{n}: injected fault did not surface"),
            }
            // The context stays usable and the clean rerun matches the
            // group-id-modulo-base oracle exactly where ids are stable.
            let sel = ops::select_eq(&ctx, clerk, &probe).unwrap();
            assert_eq!(sel.iter().collect::<Vec<_>>(), oracle.0, "k={k}: select retry diverged");
            let grp = ops::group1(&ctx, clerk).unwrap();
            assert_eq!(grp.len(), oracle.1, "k={k}: group retry diverged");
            let uni = ops::unique(&ctx, clerk).unwrap();
            assert_eq!(uni.iter().collect::<Vec<_>>(), oracle.2, "k={k}: unique retry diverged");
        });
    }
    assert_eq!(aborts as u64, n, "every governed point of the encoded chain must abort once");
    // Other tests in this binary run concurrently and hold checkouts
    // transiently; poll for quiescence. A real abort-path leak never
    // settles back to the baseline.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let now = typed::scratch_checked_out();
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "encoded-path aborts leaked scratch: baseline {baseline}, now {now}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The memory governor aborts exactly the over-budget query: a session
/// with a tiny byte budget gets a typed `BudgetExceeded` while concurrent
/// unbudgeted sessions complete bit-identically, and lifting the budget
/// on the *same* session recovers it without a restart.
#[test]
fn memory_budget_aborts_that_query_only_and_lifting_recovers() {
    let w = world();
    let queries = all_queries();
    let server = server(w);
    let q1 = &queries[0];
    let oracle = {
        let s = server.session();
        governed(|| s.run_query(q1, &w.params)).unwrap()
    };

    std::thread::scope(|s| {
        let (server, w, oracle) = (&server, &w, &oracle);
        s.spawn(move || {
            let session = server.session();
            session.ctx().mem.set_budget(Some(64 * 1024));
            for _ in 0..4 {
                match governed(|| session.run_query(q1, &w.params)) {
                    Err(MoaError::Kernel(MonetError::BudgetExceeded { budget_bytes, .. })) => {
                        assert_eq!(budget_bytes, 64 * 1024)
                    }
                    other => panic!("expected budget abort, got {other:?}"),
                }
            }
            // Lifting the budget revives the session in place.
            session.ctx().mem.set_budget(None);
            let got = governed(|| session.run_query(q1, &w.params)).unwrap();
            assert_eq!(&got, oracle, "lifted-budget run diverged");
        });
        s.spawn(move || {
            let session = server.session();
            for round in 0..4 {
                let got = governed(|| session.run_query(q1, &w.params)).unwrap();
                assert_eq!(&got, oracle, "unbudgeted bystander diverged in round {round}");
            }
        });
    });
}

/// Fused-pipeline governance: a fused chain probes per morsel at each of
/// its stage sites (`fuse/select`, `fuse/multiplex`, `fuse/aggr`) — every
/// one of those points must abort cleanly when a fault fires there, the
/// same context must retry bit-identically, and the abort paths must
/// return every scratch buffer (the RLE-dbl window path and the staged
/// replay both borrow from the process-wide pool).
#[test]
fn injected_faults_on_fused_pipelines_abort_cleanly_and_return_scratch() {
    use std::time::{Duration, Instant};

    use monet::atom::AtomValue;
    use monet::ctx::ExecCtx;
    use monet::gov::site;
    use monet::ops::fused::{run_fused, FArg, FusedOut, Stage};
    use monet::ops::{AggFunc, ScalarFunc};
    use monet::typed;

    let n = 4000usize;
    // RLE-dbl source (a run-length ramp): the fused window path decodes
    // per morsel and must not leak scratch on any abort.
    let dbl =
        monet::column::Column::from_dbls((0..n).map(|i| (i / 250) as f64).collect()).encode(true);
    assert_eq!(
        dbl.encoding(),
        monet::props::Enc::Rle,
        "fixture must be RLE-encoded — otherwise this sweeps the raw window path",
    );
    let rle = monet::bat::Bat::new(monet::column::Column::from_oids((0..n as u64).collect()), dbl);
    let ints = monet::bat::Bat::new(
        monet::column::Column::from_oids((0..n as u64).collect()),
        monet::column::Column::from_ints((0..n).map(|i| (i as i32) % 97 - 48).collect()),
    );
    // Float sum in an unfiltered chain; integer select -> map -> max.
    let sum_chain: Vec<Stage> = vec![
        Stage::Map {
            f: ScalarFunc::Mul,
            args: vec![FArg::Chain, FArg::Const(AtomValue::Dbl(2.0))],
        },
        Stage::Aggr(AggFunc::Sum),
    ];
    let filt_chain: Vec<Stage> = vec![
        Stage::SelectRange {
            lo: Some(AtomValue::Int(-10)),
            hi: Some(AtomValue::Int(30)),
            inc_lo: true,
            inc_hi: false,
        },
        Stage::Map { f: ScalarFunc::Add, args: vec![FArg::Chain, FArg::Const(AtomValue::Int(7))] },
        Stage::Aggr(AggFunc::Max),
    ];
    let run = |ctx: &ExecCtx| -> monet::error::Result<(AtomValue, AtomValue)> {
        let scalar = |o| match o {
            FusedOut::Scalar(v) => v,
            FusedOut::Bat(_) => panic!("aggregate-terminated chain must yield a scalar"),
        };
        let a = scalar(run_fused(ctx, &rle, &sum_chain)?);
        let b = scalar(run_fused(ctx, &ints, &filt_chain)?);
        Ok((a, b))
    };

    let baseline = typed::scratch_checked_out();
    let (oracle, n_probes) = {
        let ctx = ExecCtx::new();
        let r = governed(|| run(&ctx)).unwrap();
        (r, ctx.gov.probes())
    };
    assert!(n_probes > 0, "fused chains exposed no governed points");

    // Each fused stage site must actually fire: arm per-site (not "*") so
    // a silently-skipped probe fails loudly here instead of shrinking the
    // wildcard sweep below.
    for fused_site in [site::FUSE_SELECT, site::FUSE_MULTIPLEX, site::FUSE_AGGR] {
        let ctx = ExecCtx::new();
        ctx.gov.arm_fault(fused_site, 1);
        match governed(|| run(&ctx)) {
            Err(MonetError::Injected { site: s, .. }) => {
                assert_eq!(s, fused_site, "fault fired at the wrong site")
            }
            other => panic!("{fused_site}: expected injected fault, got {other:?}"),
        }
        let retry = governed(|| run(&ctx)).unwrap();
        assert_eq!(retry, oracle, "{fused_site}: retry diverged from oracle");
    }

    // Wildcard sweep over every governed point of both chains.
    for k in 1..=n_probes {
        let ctx = ExecCtx::new();
        ctx.gov.arm_fault("*", k);
        match governed(|| run(&ctx)) {
            Err(MonetError::Injected { hit, .. }) => {
                assert_eq!(hit, k, "fault fired at the wrong probe")
            }
            other => panic!("k={k}/{n_probes}: expected injected fault, got {other:?}"),
        }
        let retry = governed(|| run(&ctx)).unwrap();
        assert_eq!(retry, oracle, "k={k}/{n_probes}: retry diverged from oracle");
    }

    // Concurrent tests hold checkouts transiently; poll for quiescence. A
    // real abort-path leak never settles back to the baseline.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let now = typed::scratch_checked_out();
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fused-pipeline aborts leaked scratch: baseline {baseline}, now {now}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
