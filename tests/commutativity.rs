//! Figure 6, machine-checked with property testing: for randomly
//! generated databases and a family of MOA expressions, the translated
//! MIL program plus result structure function must produce exactly the
//! value sets the denotational reference evaluator produces —
//! `S_Y(mil(X_1…X_n)) = moa(X)`.

use moa::prelude::*;
use moa::testkit::assert_commutes;
use monet::atom::AtomType;
use monet::bat::Bat;
use monet::column::Column;
use monet::db::Db;
use monet::ops::{AggFunc, ScalarFunc};
use proptest::prelude::*;

/// A random two-class database: orders with clerks/flags, items
/// referencing them with prices.
#[derive(Debug, Clone)]
struct RandomDb {
    clerks: Vec<u8>,     // clerk tag per order (small alphabet)
    item_order: Vec<u8>, // order index per item
    prices: Vec<i32>,    // price per item
    flags: Vec<bool>,    // flag per item
}

fn random_db() -> impl Strategy<Value = RandomDb> {
    (1usize..6, 0usize..24).prop_flat_map(|(n_orders, n_items)| {
        (
            proptest::collection::vec(0u8..4, n_orders),
            proptest::collection::vec(0u8..(n_orders as u8), n_items),
            proptest::collection::vec(-50i32..50, n_items),
            proptest::collection::vec(any::<bool>(), n_items),
        )
            .prop_map(|(clerks, item_order, prices, flags)| RandomDb {
                clerks,
                item_order,
                prices,
                flags,
            })
    })
}

fn build_catalog(r: &RandomDb) -> Catalog {
    let mut schema = Schema::new();
    schema
        .add_class(ClassDef::new("Order", vec![Field::new("clerk", MoaType::Base(AtomType::Str))]));
    schema.add_class(ClassDef::new(
        "Item",
        vec![
            Field::new("order", MoaType::Object("Order".into())),
            Field::new("price", MoaType::Base(AtomType::Int)),
            Field::new("flag", MoaType::Base(AtomType::Bool)),
        ],
    ));
    let order_base = 100u64;
    let item_base = 1000u64;
    let mut db = Db::new();
    db.register(
        "Order",
        Bat::with_inferred_props(
            Column::from_oids((0..r.clerks.len() as u64).map(|i| order_base + i).collect()),
            Column::void(0, r.clerks.len()),
        ),
    );
    db.register(
        "Order_clerk",
        Bat::with_inferred_props(
            Column::from_oids((0..r.clerks.len() as u64).map(|i| order_base + i).collect()),
            Column::from_strs(r.clerks.iter().map(|c| format!("clerk{c}")).collect::<Vec<_>>()),
        ),
    );
    db.register(
        "Item",
        Bat::with_inferred_props(
            Column::from_oids((0..r.item_order.len() as u64).map(|i| item_base + i).collect()),
            Column::void(0, r.item_order.len()),
        ),
    );
    let heads: Vec<u64> = (0..r.item_order.len() as u64).map(|i| item_base + i).collect();
    db.register(
        "Item_order",
        Bat::with_inferred_props(
            Column::from_oids(heads.clone()),
            Column::from_oids(r.item_order.iter().map(|&o| order_base + o as u64).collect()),
        ),
    );
    db.register(
        "Item_price",
        Bat::with_inferred_props(
            Column::from_oids(heads.clone()),
            Column::from_ints(r.prices.clone()),
        ),
    );
    db.register(
        "Item_flag",
        Bat::with_inferred_props(Column::from_oids(heads), Column::from_bools(r.flags.clone())),
    );
    Catalog::new(schema, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn select_commutes(r in random_db(), threshold in -50i32..50, clerk in 0u8..4) {
        let cat = build_catalog(&r);
        let q = SetExpr::extent("Item").select(and(
            cmp(ScalarFunc::Ge, attr("price"), lit_i(threshold)),
            eq(attr("order.clerk"), lit_s(&format!("clerk{clerk}"))),
        ));
        assert_commutes(&cat, &q);
    }

    #[test]
    fn project_commutes(r in random_db(), k in -10i32..10) {
        let cat = build_catalog(&r);
        let q = SetExpr::extent("Item").project(vec![
            ProjItem::new("clerk", attr("order.clerk")),
            ProjItem::new("scaled", bin(ScalarFunc::Mul, attr("price"), lit_i(k))),
            ProjItem::new("flag", attr("flag")),
        ]);
        assert_commutes(&cat, &q);
    }

    #[test]
    fn nest_aggregate_commutes(r in random_db()) {
        let cat = build_catalog(&r);
        let q = SetExpr::extent("Item")
            .project(vec![
                ProjItem::new("clerk", attr("order.clerk")),
                ProjItem::new("price", attr("price")),
            ])
            .nest(vec![ProjItem::new("clerk", attr("clerk"))])
            .project(vec![
                ProjItem::new("clerk", attr("clerk")),
                ProjItem::new("total", agg_over(AggFunc::Sum, sattr(NEST_REST), attr("price"))),
                ProjItem::new("n", agg(AggFunc::Count, sattr(NEST_REST))),
            ]);
        assert_commutes(&cat, &q);
    }

    #[test]
    fn setops_commute(r in random_db(), t1 in -50i32..50, t2 in -50i32..50) {
        let cat = build_catalog(&r);
        let a = SetExpr::extent("Item").select(cmp(ScalarFunc::Ge, attr("price"), lit_i(t1)));
        let b = SetExpr::extent("Item").select(cmp(ScalarFunc::Lt, attr("price"), lit_i(t2)));
        assert_commutes(&cat, &a.clone().union(b.clone()));
        assert_commutes(&cat, &a.clone().diff(b.clone()));
        assert_commutes(&cat, &a.intersect(b));
    }

    #[test]
    fn top_commutes(r in random_db(), n in 1usize..8) {
        // Ties in prices make top-k ambiguous; deduplicate by filtering to
        // a strict subset via distinct prices is overkill — instead only
        // check cardinality-stable behaviour through commutativity when
        // prices are distinct.
        let mut seen = std::collections::HashSet::new();
        if !r.prices.iter().all(|p| seen.insert(*p)) {
            return Ok(());
        }
        let cat = build_catalog(&r);
        assert_commutes(&cat, &SetExpr::extent("Item").top(attr("price"), n, true));
        assert_commutes(&cat, &SetExpr::extent("Item").top(attr("price"), n, false));
    }

    #[test]
    fn boolean_predicates_commute(r in random_db(), t in -50i32..50) {
        let cat = build_catalog(&r);
        let q = SetExpr::extent("Item").select(or(
            and(
                eq(attr("flag"), lit(monet::atom::AtomValue::Bool(true))),
                cmp(ScalarFunc::Lt, attr("price"), lit_i(t)),
            ),
            not(eq(attr("flag"), lit(monet::atom::AtomValue::Bool(true)))),
        ));
        assert_commutes(&cat, &q);
    }

    #[test]
    fn join_semijoin_commute(r in random_db()) {
        let cat = build_catalog(&r);
        let q = SetExpr::extent("Order").semijoin_eq(
            SetExpr::extent("Item"),
            this(),
            attr("order"),
        );
        assert_commutes(&cat, &q);
        let j = SetExpr::extent("Item")
            .project(vec![ProjItem::new("clerk", attr("order.clerk"))])
            .join_eq(
                SetExpr::extent("Order").project(vec![ProjItem::new("clerk", attr("clerk"))]),
                attr("clerk"),
                attr("clerk"),
                "l",
                "r",
            );
        assert_commutes(&cat, &j);
    }
}
