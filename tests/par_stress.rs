//! Stress the shared-state corners of the parallel executor: the bounded
//! thread-local scratch pool under concurrent checkout/return, pooled
//! `GroupTable` reuse across tasks (stale-state leaks), and the join's
//! epoch-tagged cluster tables when many kernels share the worker pool at
//! once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use monet::atom::AtomValue;
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::error::MonetError;
use monet::ops::{self, reference};
use monet::par;
use monet::typed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Concurrent checkout/return: every live buffer must be exclusively
/// owned. The pools are thread-local, so the claim under test is that a
/// buffer is never handed out twice *while still checked out* — on the
/// same thread (double-take must yield distinct backing stores) and that
/// interleaved writes from many threads never bleed into each other's
/// buffers.
#[test]
fn scratch_pool_concurrent_checkout_return() {
    let live: Arc<Mutex<std::collections::HashSet<usize>>> =
        Arc::new(Mutex::new(Default::default()));
    let iters = 200usize;
    let workers = 8usize;
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                for it in 0..iters {
                    // Take several buffers at once (forces the pool past its
                    // bounded capacity and through fresh allocations).
                    let mut u32s: Vec<Vec<u32>> =
                        (0..3).map(|k| typed::take_u32(64 + 32 * k)).collect();
                    let mut u64s: Vec<Vec<u64>> = (0..2).map(|k| typed::take_u64(96 + k)).collect();
                    // Every live buffer pointer must be unique process-wide.
                    {
                        let mut set = live.lock().unwrap();
                        for v in &u32s {
                            assert!(
                                set.insert(v.as_ptr() as usize),
                                "u32 buffer aliased while live"
                            );
                        }
                        for v in &u64s {
                            assert!(
                                set.insert(v.as_ptr() as usize),
                                "u64 buffer aliased while live"
                            );
                        }
                    }
                    // Distinct fill patterns; verify after a yield so other
                    // threads interleave.
                    let tag = (w * 1_000 + it) as u64;
                    for (k, v) in u32s.iter_mut().enumerate() {
                        assert!(v.is_empty(), "pool must hand out cleared buffers");
                        v.extend((0..40u32).map(|x| x + (tag as u32) * 7 + k as u32));
                    }
                    for (k, v) in u64s.iter_mut().enumerate() {
                        v.extend((0..40u64).map(|x| x * 3 + tag + k as u64));
                    }
                    std::thread::yield_now();
                    for (k, v) in u32s.iter().enumerate() {
                        for (x, &got) in v.iter().enumerate() {
                            assert_eq!(
                                got,
                                x as u32 + (tag as u32) * 7 + k as u32,
                                "u32 corrupted"
                            );
                        }
                    }
                    for (k, v) in u64s.iter().enumerate() {
                        for (x, &got) in v.iter().enumerate() {
                            assert_eq!(got, x as u64 * 3 + tag + k as u64, "u64 corrupted");
                        }
                    }
                    {
                        let mut set = live.lock().unwrap();
                        for v in &u32s {
                            set.remove(&(v.as_ptr() as usize));
                        }
                        for v in &u64s {
                            set.remove(&(v.as_ptr() as usize));
                        }
                    }
                    for v in u32s {
                        typed::put_u32(v);
                    }
                    for v in u64s {
                        typed::put_u64(v);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Pooled `GroupTable`s are recycled between tasks on the same worker; a
/// stale bucket or chain entry surviving `pooled()` re-initialization
/// would assign wrong group ids. Hammer group1/unique through the worker
/// pool with changing data and verify against the reference every round.
#[test]
fn pooled_group_tables_carry_no_stale_state_across_rounds() {
    let ctx = ExecCtx::new();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..30 {
        let n = rng.gen_range(64..700usize);
        // Alternate wildly different key distributions so a stale entry
        // from the previous round would be a plausible (wrong) match.
        let span = if round % 2 == 0 { 3u64 } else { 1 << 40 };
        let b = Bat::new(
            Column::from_oids((0..n as u64).collect()),
            Column::from_oids((0..n as u64).map(|i| i * 37 % span).collect()),
        );
        par::with_par_config(Some(4), Some(1), Some(61), || {
            let g = ops::group1(&ExecCtx::new(), &b).unwrap();
            let canon: Vec<u64> = {
                let mut map = std::collections::HashMap::new();
                (0..g.len())
                    .map(|i| {
                        let gid = g.tail().oid_at(i);
                        let next = map.len() as u64;
                        *map.entry(gid).or_insert(next)
                    })
                    .collect()
            };
            assert_eq!(canon, reference::group1_gids(&b), "round {round}: group1");
            let u = ops::unique(&ctx, &b).unwrap();
            let expect = reference::unique(&b);
            assert_eq!(
                u.iter().collect::<Vec<_>>(),
                expect.iter().collect::<Vec<_>>(),
                "round {round}: unique"
            );
        });
    }
}

/// Many dispatchers sharing the worker pool at once: concurrent threads
/// each run parallel joins (epoch-tagged per-cluster tables, scratch-pool
/// buffers reused across interleaved tasks from *different* joins on the
/// same workers) plus selects and sums, all verified against serial
/// oracles. A buffer handed to two tasks, or an epoch tag honored across
/// cluster/table reuse, fails the comparison.
#[test]
fn concurrent_kernels_share_the_worker_pool_safely() {
    let rounds = 4usize;
    let drivers = 4usize;
    let failures = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..drivers)
        .map(|d| {
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || {
                let ctx = ExecCtx::new();
                let mut rng = StdRng::seed_from_u64(0xBEEF + d as u64);
                for _ in 0..rounds {
                    let n = 12_000usize;
                    let m = 4_000usize;
                    let left = Bat::new(
                        Column::from_oids((0..n as u64).collect()),
                        Column::from_ints((0..n).map(|_| rng.gen_range(0..3_000i32)).collect()),
                    );
                    let right = Bat::new(
                        Column::from_ints((0..m).map(|_| rng.gen_range(0..3_000i32)).collect()),
                        Column::from_oids((0..m as u64).collect()),
                    );
                    let oracle = ops::join::join_hash(&ctx, &left, &right);
                    let sum_oracle = par::with_par_config(Some(1), Some(1), None, || {
                        ops::aggr_scalar(&ctx, &left, ops::AggFunc::Sum).unwrap()
                    });
                    par::with_par_config(Some(3), Some(1), None, || {
                        let j = ops::join_partitioned(&ctx, &left, &right).unwrap();
                        if j.iter().collect::<Vec<_>>() != oracle.iter().collect::<Vec<_>>() {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        let s = ops::aggr_scalar(&ctx, &left, ops::AggFunc::Sum).unwrap();
                        if s != sum_oracle {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        let sel = ops::select_eq(&ctx, &left, &AtomValue::Int(1_500)).unwrap();
                        let ser = reference::select_eq(&left, &AtomValue::Int(1_500));
                        if sel.iter().collect::<Vec<_>>() != ser.iter().collect::<Vec<_>>() {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(failures.load(Ordering::Relaxed), 0, "concurrent kernel results diverged");
}

/// Build the (left, right) operand pair the governor rounds use: enough
/// rows that the partitioned join morselizes under the forced config, a
/// value range dense enough to produce plenty of matches.
fn join_operands(seed: u64, n: usize, m: usize) -> (Bat, Bat) {
    let mut rng = StdRng::seed_from_u64(seed);
    let left = Bat::new(
        Column::from_oids((0..n as u64).collect()),
        Column::from_ints((0..n).map(|_| rng.gen_range(0..2_000i32)).collect()),
    );
    let right = Bat::new(
        Column::from_ints((0..m).map(|_| rng.gen_range(0..2_000i32)).collect()),
        Column::from_oids((0..m as u64).collect()),
    );
    (left, right)
}

/// Cooperative cancellation under concurrency: one driver's query is
/// cancelled mid-join while other drivers sharing the worker pool run to
/// completion bit-identically. The victim's context is revived with
/// `CancelToken::clear` and must then reproduce the oracle exactly.
#[test]
fn cancellation_mid_join_leaves_other_drivers_bit_identical() {
    let rounds = 10usize;
    let (left, right) = join_operands(0xCA7CE1, 24_000, 8_000);
    let oracle = {
        let ctx = ExecCtx::new();
        ops::join::join_hash(&ctx, &left, &right).iter().collect::<Vec<_>>()
    };
    let cancelled = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        // Victim: half the rounds pre-cancel (deterministic abort at the
        // first probe), half race a canceller thread against the join so
        // cancellation lands mid-flight when it lands at all.
        let (left2, right2, oracle2) = (&left, &right, &oracle);
        let cancelled2 = Arc::clone(&cancelled);
        s.spawn(move || {
            let ctx = ExecCtx::new();
            let token = ctx.cancel_token();
            for round in 0..rounds {
                let racer = (round % 2 == 1).then(|| {
                    let token = token.clone();
                    std::thread::spawn(move || token.cancel())
                });
                if round % 2 == 0 {
                    token.cancel();
                }
                match par::with_par_config(Some(3), Some(1), Some(61), || {
                    ops::join_partitioned(&ctx, left2, right2)
                }) {
                    Err(MonetError::Cancelled) => {
                        cancelled2.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("victim round {round}: unexpected error {e}"),
                    Ok(j) => assert_eq!(
                        j.iter().collect::<Vec<_>>(),
                        *oracle2,
                        "victim round {round}: uncancelled run diverged"
                    ),
                }
                if let Some(h) = racer {
                    h.join().unwrap();
                }
                // Revive the context; the retry must match the oracle.
                token.clear();
                let j = par::with_par_config(Some(3), Some(1), Some(61), || {
                    ops::join_partitioned(&ctx, left2, right2).unwrap()
                });
                assert_eq!(
                    j.iter().collect::<Vec<_>>(),
                    *oracle2,
                    "victim round {round}: post-clear retry diverged"
                );
            }
        });
        // Bystanders: same operands, same worker pool, never cancelled.
        for d in 0..2 {
            let (left2, right2, oracle2) = (&left, &right, &oracle);
            s.spawn(move || {
                let ctx = ExecCtx::new();
                for round in 0..rounds {
                    let j = par::with_par_config(Some(3), Some(1), Some(61), || {
                        ops::join_partitioned(&ctx, left2, right2).unwrap()
                    });
                    assert_eq!(
                        j.iter().collect::<Vec<_>>(),
                        *oracle2,
                        "bystander {d} round {round} diverged"
                    );
                }
            });
        }
    });
    // The pre-cancelled rounds guarantee at least rounds/2 observed aborts.
    assert!(cancelled.load(Ordering::Relaxed) >= rounds / 2, "cancellation was never observed");
}

/// Scratch-pool leak accounting across governor aborts: injected faults
/// and cancellations at arbitrary points of the parallel join, group, and
/// aggregate kernels must return every checked-out scratch buffer — the
/// process-wide checkout balance settles back to its pre-round baseline.
/// A single abort path that drops a buffer instead of putting it back
/// shows up as a monotonically climbing balance.
#[test]
fn governor_aborts_return_all_scratch_to_the_pool() {
    let (left, right) = join_operands(0xFA17, 24_000, 8_000);
    let groups = Bat::new(
        Column::from_oids((0..20_000u64).collect()),
        Column::from_oids((0..20_000u64).map(|i| i * 31 % 997).collect()),
    );
    let baseline = typed::scratch_checked_out();
    let oracle = {
        let ctx = ExecCtx::new();
        ops::join::join_hash(&ctx, &left, &right).iter().collect::<Vec<_>>()
    };
    let mut aborts = 0usize;
    for &k in &[1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144] {
        let ctx = ExecCtx::new();
        ctx.gov.arm_fault("*", k);
        par::with_par_config(Some(4), Some(1), Some(61), || {
            let r = ops::join_partitioned(&ctx, &left, &right)
                .and_then(|_| ops::group1(&ctx, &groups))
                .and_then(|_| ops::aggr_scalar(&ctx, &left, ops::AggFunc::Sum).map(|_| ()));
            match r {
                Err(MonetError::Injected { .. }) => aborts += 1,
                Err(e) => panic!("k={k}: unexpected error {e}"),
                Ok(()) => {} // k past the chain's last probe: ran clean
            }
            // Whatever happened, the context is reusable and correct.
            let j = ops::join_partitioned(&ctx, &left, &right).unwrap();
            assert_eq!(j.iter().collect::<Vec<_>>(), oracle, "k={k}: retry diverged");
        });
        // A cancellation abort in the same round: fires at the first probe.
        let ctx = ExecCtx::new();
        ctx.cancel_token().cancel();
        par::with_par_config(Some(4), Some(1), Some(61), || {
            match ops::join_partitioned(&ctx, &left, &right) {
                Err(MonetError::Cancelled) => {}
                other => panic!("k={k}: pre-cancelled join must abort, got {other:?}"),
            }
        });
    }
    assert!(aborts >= 8, "fault schedule barely exercised the kernels ({aborts} aborts)");
    // Other tests in this binary run concurrently and hold checkouts
    // transiently; poll for quiescence instead of demanding an instant
    // match. A real abort-path leak never settles back.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let now = typed::scratch_checked_out();
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "scratch checkouts leaked across aborts: baseline {baseline}, now {now}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
