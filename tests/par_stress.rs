//! Stress the shared-state corners of the parallel executor: the bounded
//! thread-local scratch pool under concurrent checkout/return, pooled
//! `GroupTable` reuse across tasks (stale-state leaks), and the join's
//! epoch-tagged cluster tables when many kernels share the worker pool at
//! once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use monet::atom::AtomValue;
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops::{self, reference};
use monet::par;
use monet::typed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Concurrent checkout/return: every live buffer must be exclusively
/// owned. The pools are thread-local, so the claim under test is that a
/// buffer is never handed out twice *while still checked out* — on the
/// same thread (double-take must yield distinct backing stores) and that
/// interleaved writes from many threads never bleed into each other's
/// buffers.
#[test]
fn scratch_pool_concurrent_checkout_return() {
    let live: Arc<Mutex<std::collections::HashSet<usize>>> =
        Arc::new(Mutex::new(Default::default()));
    let iters = 200usize;
    let workers = 8usize;
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                for it in 0..iters {
                    // Take several buffers at once (forces the pool past its
                    // bounded capacity and through fresh allocations).
                    let mut u32s: Vec<Vec<u32>> =
                        (0..3).map(|k| typed::take_u32(64 + 32 * k)).collect();
                    let mut u64s: Vec<Vec<u64>> = (0..2).map(|k| typed::take_u64(96 + k)).collect();
                    // Every live buffer pointer must be unique process-wide.
                    {
                        let mut set = live.lock().unwrap();
                        for v in &u32s {
                            assert!(
                                set.insert(v.as_ptr() as usize),
                                "u32 buffer aliased while live"
                            );
                        }
                        for v in &u64s {
                            assert!(
                                set.insert(v.as_ptr() as usize),
                                "u64 buffer aliased while live"
                            );
                        }
                    }
                    // Distinct fill patterns; verify after a yield so other
                    // threads interleave.
                    let tag = (w * 1_000 + it) as u64;
                    for (k, v) in u32s.iter_mut().enumerate() {
                        assert!(v.is_empty(), "pool must hand out cleared buffers");
                        v.extend((0..40u32).map(|x| x + (tag as u32) * 7 + k as u32));
                    }
                    for (k, v) in u64s.iter_mut().enumerate() {
                        v.extend((0..40u64).map(|x| x * 3 + tag + k as u64));
                    }
                    std::thread::yield_now();
                    for (k, v) in u32s.iter().enumerate() {
                        for (x, &got) in v.iter().enumerate() {
                            assert_eq!(
                                got,
                                x as u32 + (tag as u32) * 7 + k as u32,
                                "u32 corrupted"
                            );
                        }
                    }
                    for (k, v) in u64s.iter().enumerate() {
                        for (x, &got) in v.iter().enumerate() {
                            assert_eq!(got, x as u64 * 3 + tag + k as u64, "u64 corrupted");
                        }
                    }
                    {
                        let mut set = live.lock().unwrap();
                        for v in &u32s {
                            set.remove(&(v.as_ptr() as usize));
                        }
                        for v in &u64s {
                            set.remove(&(v.as_ptr() as usize));
                        }
                    }
                    for v in u32s {
                        typed::put_u32(v);
                    }
                    for v in u64s {
                        typed::put_u64(v);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Pooled `GroupTable`s are recycled between tasks on the same worker; a
/// stale bucket or chain entry surviving `pooled()` re-initialization
/// would assign wrong group ids. Hammer group1/unique through the worker
/// pool with changing data and verify against the reference every round.
#[test]
fn pooled_group_tables_carry_no_stale_state_across_rounds() {
    let ctx = ExecCtx::new();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..30 {
        let n = rng.gen_range(64..700usize);
        // Alternate wildly different key distributions so a stale entry
        // from the previous round would be a plausible (wrong) match.
        let span = if round % 2 == 0 { 3u64 } else { 1 << 40 };
        let b = Bat::new(
            Column::from_oids((0..n as u64).collect()),
            Column::from_oids((0..n as u64).map(|i| i * 37 % span).collect()),
        );
        par::with_par_config(Some(4), Some(1), Some(61), || {
            let g = ops::group1(&ExecCtx::new(), &b).unwrap();
            let canon: Vec<u64> = {
                let mut map = std::collections::HashMap::new();
                (0..g.len())
                    .map(|i| {
                        let gid = g.tail().oid_at(i);
                        let next = map.len() as u64;
                        *map.entry(gid).or_insert(next)
                    })
                    .collect()
            };
            assert_eq!(canon, reference::group1_gids(&b), "round {round}: group1");
            let u = ops::unique(&ctx, &b).unwrap();
            let expect = reference::unique(&b);
            assert_eq!(
                u.iter().collect::<Vec<_>>(),
                expect.iter().collect::<Vec<_>>(),
                "round {round}: unique"
            );
        });
    }
}

/// Many dispatchers sharing the worker pool at once: concurrent threads
/// each run parallel joins (epoch-tagged per-cluster tables, scratch-pool
/// buffers reused across interleaved tasks from *different* joins on the
/// same workers) plus selects and sums, all verified against serial
/// oracles. A buffer handed to two tasks, or an epoch tag honored across
/// cluster/table reuse, fails the comparison.
#[test]
fn concurrent_kernels_share_the_worker_pool_safely() {
    let rounds = 4usize;
    let drivers = 4usize;
    let failures = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..drivers)
        .map(|d| {
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || {
                let ctx = ExecCtx::new();
                let mut rng = StdRng::seed_from_u64(0xBEEF + d as u64);
                for _ in 0..rounds {
                    let n = 12_000usize;
                    let m = 4_000usize;
                    let left = Bat::new(
                        Column::from_oids((0..n as u64).collect()),
                        Column::from_ints((0..n).map(|_| rng.gen_range(0..3_000i32)).collect()),
                    );
                    let right = Bat::new(
                        Column::from_ints((0..m).map(|_| rng.gen_range(0..3_000i32)).collect()),
                        Column::from_oids((0..m as u64).collect()),
                    );
                    let oracle = ops::join::join_hash(&ctx, &left, &right);
                    let sum_oracle = par::with_par_config(Some(1), Some(1), None, || {
                        ops::aggr_scalar(&ctx, &left, ops::AggFunc::Sum).unwrap()
                    });
                    par::with_par_config(Some(3), Some(1), None, || {
                        let j = ops::join_partitioned(&ctx, &left, &right);
                        if j.iter().collect::<Vec<_>>() != oracle.iter().collect::<Vec<_>>() {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        let s = ops::aggr_scalar(&ctx, &left, ops::AggFunc::Sum).unwrap();
                        if s != sum_oracle {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        let sel = ops::select_eq(&ctx, &left, &AtomValue::Int(1_500)).unwrap();
                        let ser = reference::select_eq(&left, &AtomValue::Int(1_500));
                        if sel.iter().collect::<Vec<_>>() != ser.iter().collect::<Vec<_>>() {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(failures.load(Ordering::Relaxed), 0, "concurrent kernel results diverged");
}
