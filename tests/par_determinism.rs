//! Parallel-vs-serial oracle harness: every parallelized kernel must be
//! **bit-identical** to the generic reference implementation *and* to its
//! own serial path, across all 9 atom types, sliced/offset column windows,
//! and thread counts {1, 2, 4, 7} (the odd count catches remainder-morsel
//! bugs; 1 is the forced-serial `FLATALG_THREADS=1` path).
//!
//! The thread count and morsel size are set through the scoped
//! `par::with_par_config` override — the same switch `FLATALG_THREADS` /
//! `FLATALG_PAR_MIN_ROWS` flip process-wide — so the suite can sweep
//! configurations from concurrent test threads without racing on the
//! environment. Morsel sizes are deliberately small and odd (the operands
//! here are hundreds of rows, not hundreds of thousands), which exercises
//! many-morsel schedules and ragged final morsels.
//!
//! ROADMAP rule: parallel kernels ship with a parallel-vs-serial oracle
//! test — new parallel kernels get their cases added HERE.

use monet::atom::{AtomType, AtomValue, Date};
use monet::bat::Bat;
use monet::column::Column;
use monet::ctx::ExecCtx;
use monet::ops::{self, reference};
use monet::par;
use monet::props::Enc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x9A12_1998;

/// Thread counts every kernel is swept over. 7 is deliberately odd and
/// larger than the morsel count of some operands (excess threads must
/// idle harmlessly).
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Small odd morsel size: a few hundred-row operand becomes many morsels
/// with a ragged tail.
const MORSEL: usize = 53;

/// Run `f` under a forced-parallel configuration (`threads` workers,
/// every operand above the row threshold, tiny odd morsels).
fn parallel<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    par::with_par_config(Some(threads), Some(1), Some(MORSEL), f)
}

/// The kernel's own serial path under the *same* morsel grid (morsel
/// decomposition is part of the kernel definition for float reductions,
/// so the serial oracle must share it).
fn serial<R>(f: impl FnOnce() -> R) -> R {
    parallel(1, f)
}

const ALL_TYPES: &[AtomType] = &[
    AtomType::Void,
    AtomType::Oid,
    AtomType::Bool,
    AtomType::Chr,
    AtomType::Int,
    AtomType::Lng,
    AtomType::Dbl,
    AtomType::Str,
    AtomType::Date,
];

fn random_value(rng: &mut StdRng, ty: AtomType) -> AtomValue {
    match ty {
        AtomType::Void | AtomType::Oid => AtomValue::Oid(rng.gen_range(0..24u64)),
        AtomType::Bool => AtomValue::Bool(rng.gen_bool(0.5)),
        AtomType::Chr => AtomValue::Chr(rng.gen_range(b'a'..=b'e')),
        AtomType::Int => AtomValue::Int(rng.gen_range(-8..8i32)),
        AtomType::Lng => AtomValue::Lng(rng.gen_range(-9..9i64)),
        AtomType::Dbl => {
            // Integral doubles: IEEE addition over them is exact (well
            // within 2^53), so even order-sensitive float sums are
            // bit-identical to the row-order reference fold. The
            // non-integral association case is covered separately in
            // `dbl_sum_bit_identical_across_thread_counts`.
            AtomValue::Dbl(rng.gen_range(-40..40i32) as f64)
        }
        AtomType::Str => {
            let vocab = ["", "a", "ab", "b", "ba", "zz", "EUROPE", "ASIA"];
            AtomValue::str(vocab[rng.gen_range(0..vocab.len())])
        }
        AtomType::Date => AtomValue::Date(Date(rng.gen_range(8000..8020i32))),
    }
}

/// A random column of `ty`, often presented as an offset window into a
/// larger allocation (so every parallel kernel sees `off != 0` slices).
fn random_column(rng: &mut StdRng, ty: AtomType, n: usize) -> Column {
    let windowed = rng.gen_bool(0.5);
    let (pre, post) =
        if windowed { (rng.gen_range(0..7usize), rng.gen_range(0..7usize)) } else { (0, 0) };
    let total = n + pre + post;
    let col = if ty == AtomType::Void {
        Column::void(rng.gen_range(0..30u64), total)
    } else {
        Column::from_atoms(ty, (0..total).map(|_| random_value(rng, ty)))
    };
    col.slice(pre, n)
}

/// Exact (head, tail) value sequence — order matters, bits matter (Dbl
/// compares via the IEEE-total-order `AtomValue` equality).
fn rows_of(b: &Bat) -> Vec<(AtomValue, AtomValue)> {
    b.iter().collect()
}

// ---------------------------------------------------------------------------
// select scan / range scan
// ---------------------------------------------------------------------------

#[test]
fn par_select_bit_identical() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..4 {
            let n = rng.gen_range(0..400usize);
            let b =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            let v = random_value(&mut rng, ty);
            let (a2, c2) = (random_value(&mut rng, ty), random_value(&mut rng, ty));
            let (lo, hi) = if a2.cmp_same_type(&c2).is_le() { (a2, c2) } else { (c2, a2) };
            let (il, ih) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
            let ref_eq = reference::select_eq(&b, &v);
            let ref_rng = reference::select_range(&b, Some(&lo), Some(&hi), il, ih);
            let ser_eq = serial(|| ops::select_eq(&ctx, &b, &v).unwrap());
            let ser_rng =
                serial(|| ops::select_range(&ctx, &b, Some(&lo), Some(&hi), il, ih).unwrap());
            for t in THREADS {
                let got = parallel(t, || ops::select_eq(&ctx, &b, &v).unwrap());
                assert_eq!(rows_of(&got), rows_of(&ref_eq), "{ty} case {case} t={t}: eq vs ref");
                assert_eq!(rows_of(&got), rows_of(&ser_eq), "{ty} case {case} t={t}: eq vs serial");
                let got = parallel(t, || {
                    ops::select_range(&ctx, &b, Some(&lo), Some(&hi), il, ih).unwrap()
                });
                assert_eq!(rows_of(&got), rows_of(&ref_rng), "{ty} case {case} t={t}: rng vs ref");
                assert_eq!(
                    rows_of(&got),
                    rows_of(&ser_rng),
                    "{ty} case {case} t={t}: rng vs serial"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// multiplex synced fast paths
// ---------------------------------------------------------------------------

#[test]
fn par_multiplex_bit_identical() {
    use ops::{MultArg, ScalarFunc as F};
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let ctx = ExecCtx::new();
    let value_types = [
        AtomType::Int,
        AtomType::Lng,
        AtomType::Dbl,
        AtomType::Date,
        AtomType::Chr,
        AtomType::Bool,
        AtomType::Str,
    ];
    for case in 0..6 {
        let n = rng.gen_range(0..350usize);
        let head = random_column(&mut rng, AtomType::Oid, n);
        for &ty in &value_types {
            let x = Bat::new(head.clone(), random_column(&mut rng, ty, n));
            let arg2 = if rng.gen_bool(0.4) {
                MultArg::Const(random_value(&mut rng, ty))
            } else {
                MultArg::Bat(Bat::new(head.clone(), random_column(&mut rng, ty, n)))
            };
            let funcs: Vec<F> = match ty {
                AtomType::Int | AtomType::Lng | AtomType::Dbl => {
                    vec![F::Add, F::Sub, F::Mul, F::Div, F::Eq, F::Lt, F::Ge, F::Ne]
                }
                AtomType::Date | AtomType::Chr => vec![F::Eq, F::Ne, F::Lt, F::Ge],
                AtomType::Bool => vec![F::And, F::Or, F::Not, F::Eq],
                _ => vec![F::Eq, F::Ne, F::Lt, F::Gt, F::StrPrefix, F::StrContains],
            };
            for f in funcs {
                let args: Vec<MultArg> = match f {
                    F::Not => vec![MultArg::Bat(x.clone())],
                    F::StrPrefix | F::StrContains => vec![
                        MultArg::Bat(x.clone()),
                        MultArg::Const(random_value(&mut rng, AtomType::Str)),
                    ],
                    _ => vec![MultArg::Bat(x.clone()), arg2.clone()],
                };
                let expect = reference::multiplex_synced(f, &args);
                let ser = serial(|| ops::multiplex(&ctx, f, &args));
                for t in THREADS {
                    let got = parallel(t, || ops::multiplex(&ctx, f, &args));
                    match (&got, &expect, &ser) {
                        (Ok(g), Ok(e), Ok(s)) => {
                            assert_eq!(
                                rows_of(g),
                                rows_of(e),
                                "[{f:?}] {ty} case {case} t={t} vs ref"
                            );
                            assert_eq!(
                                rows_of(g),
                                rows_of(s),
                                "[{f:?}] {ty} case {case} t={t} vs serial"
                            );
                        }
                        (Err(_), Err(_), Err(_)) => {}
                        _ => panic!(
                            "[{f:?}] {ty} case {case} t={t}: outcome disagreement \
                             got={got:?} ref-err={} serial-err={}",
                            expect.is_err(),
                            ser.is_err()
                        ),
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// partitioned join (build + probe per cluster)
// ---------------------------------------------------------------------------

#[test]
fn par_join_partitioned_bit_identical_small_vs_reference() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let ctx = ExecCtx::new();
    for &ty in ALL_TYPES {
        for case in 0..4 {
            let n = rng.gen_range(0..60usize);
            let m = rng.gen_range(0..60usize);
            let left =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            let right =
                Bat::new(random_column(&mut rng, ty, m), random_column(&mut rng, AtomType::Int, m));
            let expect = reference::join(&left, &right);
            let ser = serial(|| ops::join_partitioned(&ctx, &left, &right).unwrap());
            for t in THREADS {
                let got = parallel(t, || ops::join_partitioned(&ctx, &left, &right).unwrap());
                assert_eq!(rows_of(&got), rows_of(&expect), "{ty} case {case} t={t}: vs ref");
                assert_eq!(rows_of(&got), rows_of(&ser), "{ty} case {case} t={t}: vs serial");
            }
        }
    }
}

#[test]
fn par_join_partitioned_bit_identical_large_vs_hash() {
    // Big enough that radix_bits > 0: many real clusters per task, the
    // epoch-tagged table reused across clusters within each worker. The
    // monolithic hash join (bit-identical to the reference per PR 3's
    // suite) is the fast oracle at this scale.
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let ctx = ExecCtx::new();
    let n = 20_000usize;
    let m = 6_000usize;
    let left = Bat::new(
        Column::from_oids((0..n as u64).collect()),
        Column::from_ints((0..n).map(|_| rng.gen_range(0..4_000i32)).collect()),
    );
    let right = Bat::new(
        Column::from_ints((0..m).map(|_| rng.gen_range(0..4_000i32)).collect()),
        Column::from_oids((0..m as u64).map(|i| 50_000 + i).collect()),
    );
    let oracle = ops::join::join_hash(&ctx, &left, &right);
    let ser = par::with_par_config(Some(1), Some(1), None, || {
        ops::join_partitioned(&ctx, &left, &right).unwrap()
    });
    assert_eq!(rows_of(&ser), rows_of(&oracle), "serial partitioned vs hash oracle");
    for t in THREADS {
        // Default morsel grid; the join parallelizes over cluster ranges,
        // not morsels, so only the thread count matters here.
        let got = par::with_par_config(Some(t), Some(1), None, || {
            ops::join_partitioned(&ctx, &left, &right).unwrap()
        });
        assert_eq!(rows_of(&got), rows_of(&oracle), "t={t}: partitioned vs hash oracle");
    }
}

// ---------------------------------------------------------------------------
// group1 / unique (per-worker GroupTables, ordered merge)
// ---------------------------------------------------------------------------

#[test]
fn par_group1_bit_identical() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 4);
    for &ty in ALL_TYPES {
        for case in 0..4 {
            let n = rng.gen_range(0..400usize);
            let b =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            // Fresh contexts per run: group oids restart at the same base,
            // so the comparison is exact (ids, not just partitions).
            let expect = reference::group1_gids(&b);
            let ser = serial(|| ops::group1(&ExecCtx::new(), &b).unwrap());
            for t in THREADS {
                let got = parallel(t, || ops::group1(&ExecCtx::new(), &b).unwrap());
                assert_eq!(rows_of(&got), rows_of(&ser), "{ty} case {case} t={t}: vs serial");
                // Reference numbering is canonical 0-based first-occurrence;
                // kernel ids are the same order-isomorphic sequence shifted
                // by the fresh-oid base — relabel and compare exactly.
                let got_canon: Vec<u64> = {
                    let mut map = std::collections::HashMap::new();
                    (0..got.len())
                        .map(|i| {
                            let g = got.tail().oid_at(i);
                            let next = map.len() as u64;
                            *map.entry(g).or_insert(next)
                        })
                        .collect()
                };
                assert_eq!(got_canon, expect, "{ty} case {case} t={t}: vs reference");
            }
        }
    }
}

#[test]
fn par_unique_bit_identical() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 5);
    let ctx = ExecCtx::new();
    for &t1 in ALL_TYPES {
        for &t2 in ALL_TYPES {
            // Small alphabets: plenty of duplicate pairs across morsels.
            let n = rng.gen_range(0..250usize);
            let b = Bat::new(random_column(&mut rng, t1, n), random_column(&mut rng, t2, n));
            let expect = reference::unique(&b);
            let ser = serial(|| ops::unique(&ctx, &b).unwrap());
            for t in THREADS {
                let got = parallel(t, || ops::unique(&ctx, &b).unwrap());
                assert_eq!(rows_of(&got), rows_of(&expect), "({t1},{t2}) t={t}: vs ref");
                assert_eq!(rows_of(&got), rows_of(&ser), "({t1},{t2}) t={t}: vs serial");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// scalar aggregates and the set-aggregate constructor {g}
// ---------------------------------------------------------------------------

#[test]
fn par_aggregates_bit_identical() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 6);
    let ctx = ExecCtx::new();
    let aggs = [
        ops::AggFunc::Count,
        ops::AggFunc::Sum,
        ops::AggFunc::Min,
        ops::AggFunc::Max,
        ops::AggFunc::Avg,
    ];
    for &ty in ALL_TYPES {
        for case in 0..4 {
            let n = rng.gen_range(0..400usize);
            let b = Bat::new(
                Column::from_oids((0..n as u64).map(|i| i % 23).collect()),
                random_column(&mut rng, ty, n),
            );
            for f in aggs {
                let ref_scalar = reference::aggr_scalar(&b, f);
                let ref_set = reference::set_aggregate(f, &b);
                let ser_scalar = serial(|| ops::aggr_scalar(&ctx, &b, f));
                let ser_set = serial(|| ops::set_aggregate(&ctx, f, &b));
                for t in THREADS {
                    let got = parallel(t, || ops::aggr_scalar(&ctx, &b, f));
                    match (&got, &ref_scalar, &ser_scalar) {
                        (Ok(g), Ok(e), Ok(s)) => {
                            assert_eq!(g, e, "{ty} case {case} t={t}: scalar {} vs ref", f.name());
                            assert_eq!(
                                g,
                                s,
                                "{ty} case {case} t={t}: scalar {} vs serial",
                                f.name()
                            );
                        }
                        (Err(_), Err(_), Err(_)) => {}
                        _ => panic!(
                            "{ty} case {case} t={t}: scalar {} outcome disagreement",
                            f.name()
                        ),
                    }
                    let got = parallel(t, || ops::set_aggregate(&ctx, f, &b));
                    match (&got, &ref_set, &ser_set) {
                        (Ok(g), Ok(e), Ok(s)) => {
                            assert_eq!(
                                rows_of(g),
                                rows_of(e),
                                "{ty} case {case} t={t}: {{{}}} vs ref",
                                f.name()
                            );
                            assert_eq!(
                                rows_of(g),
                                rows_of(s),
                                "{ty} case {case} t={t}: {{{}}} vs serial",
                                f.name()
                            );
                        }
                        (Err(_), Err(_), Err(_)) => {}
                        _ => {
                            panic!("{ty} case {case} t={t}: {{{}}} outcome disagreement", f.name())
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn dbl_sum_bit_identical_across_thread_counts() {
    // Non-integral doubles: IEEE addition is order-sensitive, so this is
    // the case that breaks any executor that reduces in completion order
    // or cuts morsels by thread count. The kernel's contract: the morsel
    // grid is fixed, partials are combined in morsel order, so every
    // thread count gives the same bits as the serial path.
    let mut rng = StdRng::seed_from_u64(SEED ^ 7);
    let n = 3_001usize; // deliberately not a multiple of the morsel size
    let vals: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0) * 1e-3 + 0.1).collect();
    let b = Bat::new(
        Column::from_oids((0..n as u64).map(|i| i % 7).collect()),
        Column::from_dbls(vals),
    );
    let ctx = ExecCtx::new();
    let ser_scalar = serial(|| ops::aggr_scalar(&ctx, &b, ops::AggFunc::Sum).unwrap());
    let ser_avg = serial(|| ops::aggr_scalar(&ctx, &b, ops::AggFunc::Avg).unwrap());
    let ser_set = serial(|| ops::set_aggregate(&ctx, ops::AggFunc::Sum, &b).unwrap());
    for t in THREADS {
        let got = parallel(t, || ops::aggr_scalar(&ctx, &b, ops::AggFunc::Sum).unwrap());
        assert_eq!(got, ser_scalar, "t={t}: {{sum}} bits");
        let got = parallel(t, || ops::aggr_scalar(&ctx, &b, ops::AggFunc::Avg).unwrap());
        assert_eq!(got, ser_avg, "t={t}: avg bits");
        let got = parallel(t, || ops::set_aggregate(&ctx, ops::AggFunc::Sum, &b).unwrap());
        assert_eq!(rows_of(&got), rows_of(&ser_set), "t={t}: per-group sum bits");
    }
}

// ---------------------------------------------------------------------------
// Larger mixed sweep on the default morsel grid (remainder morsels at the
// real size, threads > morsels for the smaller operands).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// encoded operands: dict / FOR / RLE tails must be bit-identical to their
// raw twins under every thread count — the morsel scheduler cuts encoded
// windows (narrow dict codes, FOR deltas, run boundaries) exactly like raw
// ones, and the merge order is part of the kernel contract either way.
// ---------------------------------------------------------------------------

fn encodable_value(rng: &mut StdRng, ty: AtomType) -> AtomValue {
    match ty {
        // Long, heavily duplicated strings: the dict size gate must pass
        // even though `from_atoms` does not deduplicate its heap.
        AtomType::Str => AtomValue::str(format!("Clerk#00000000000000000{}", rng.gen_range(0..5))),
        _ => random_value(rng, ty),
    }
}

/// An encoded random column of `ty` plus its raw twin exposing the same
/// values over the same window, often as an `off != 0` slice. Panics if
/// the fixture fails to encode — a silently-raw twin would make the sweep
/// a vacuous raw-vs-raw comparison.
fn encoded_pair(rng: &mut StdRng, ty: AtomType, n: usize, sorted: bool) -> (Column, Column) {
    let (pre, post) = if rng.gen_bool(0.5) {
        (rng.gen_range(0..7usize), rng.gen_range(0..7usize))
    } else {
        (0, 0)
    };
    let total = n + pre + post;
    // Sorted fixtures use a 4-value alphabet: at most 4 runs, so the RLE
    // run-count gate (`runs * 4 <= rows`) passes for every n >= 16.
    let mut vals: Vec<AtomValue> = if sorted {
        (0..total)
            .map(|_| {
                let i = rng.gen_range(0..4i32);
                match ty {
                    AtomType::Str => AtomValue::str(format!("Clerk#00000000000000000{i}")),
                    AtomType::Int => AtomValue::Int(i),
                    AtomType::Date => AtomValue::Date(Date(8000 + i)),
                    _ => unreachable!("no RLE fixture for {ty}"),
                }
            })
            .collect()
    } else {
        (0..total).map(|_| encodable_value(rng, ty)).collect()
    };
    if sorted {
        vals.sort_by(|a, b| a.cmp_same_type(b));
    }
    let raw = Column::from_atoms(ty, vals.into_iter());
    let enc = raw.encode(sorted);
    let want = if sorted {
        Enc::Rle
    } else if ty == AtomType::Str {
        Enc::Dict
    } else {
        Enc::For
    };
    assert_eq!(enc.encoding(), want, "{ty} sorted={sorted}: fixture must actually encode");
    (enc.slice(pre, n), raw.slice(pre, n))
}

#[test]
fn par_encoded_kernels_bit_identical() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 9);
    let ctx = ExecCtx::new();
    // (type, sorted): dict strings, FOR ints/dates, RLE runs.
    let legs: &[(AtomType, bool)] = &[
        (AtomType::Str, false),
        (AtomType::Int, false),
        (AtomType::Date, false),
        (AtomType::Str, true),
        (AtomType::Int, true),
    ];
    for &(ty, sorted) in legs {
        for case in 0..3 {
            let n = rng.gen_range(150..400usize);
            let (enc, raw) = encoded_pair(&mut rng, ty, n, sorted);
            let head = Column::from_oids((0..n as u64).collect());
            let eb = Bat::new(head.clone(), enc);
            let rb = Bat::new(head, raw);
            let tag = format!("{ty} sorted={sorted} case {case}");

            // Probes drawn from the fixture alphabet (plus one miss value).
            let v = encodable_value(&mut rng, ty);
            let (a2, c2) = (encodable_value(&mut rng, ty), encodable_value(&mut rng, ty));
            let (lo, hi) = if a2.cmp_same_type(&c2).is_le() { (a2, c2) } else { (c2, a2) };

            // The generic reference over the RAW twin is the ground truth;
            // the encoded serial path must match it, and every parallel
            // schedule must match both.
            let ref_eq = reference::select_eq(&rb, &v);
            let ref_rng = reference::select_range(&rb, Some(&lo), Some(&hi), true, false);
            let ref_uni = reference::unique(&rb);
            let ref_gid = reference::group1_gids(&rb);
            let ser_eq = serial(|| ops::select_eq(&ctx, &eb, &v).unwrap());
            let ser_rng =
                serial(|| ops::select_range(&ctx, &eb, Some(&lo), Some(&hi), true, false).unwrap());
            let ser_uni = serial(|| ops::unique(&ctx, &eb).unwrap());
            let ser_g = serial(|| ops::group1(&ExecCtx::new(), &eb).unwrap());
            assert_eq!(rows_of(&ser_eq), rows_of(&ref_eq), "{tag}: serial eq vs raw ref");
            assert_eq!(rows_of(&ser_rng), rows_of(&ref_rng), "{tag}: serial range vs raw ref");
            assert_eq!(rows_of(&ser_uni), rows_of(&ref_uni), "{tag}: serial unique vs raw ref");
            for t in THREADS {
                let got = parallel(t, || ops::select_eq(&ctx, &eb, &v).unwrap());
                assert_eq!(rows_of(&got), rows_of(&ser_eq), "{tag} t={t}: eq");
                let got = parallel(t, || {
                    ops::select_range(&ctx, &eb, Some(&lo), Some(&hi), true, false).unwrap()
                });
                assert_eq!(rows_of(&got), rows_of(&ser_rng), "{tag} t={t}: range");
                let got = parallel(t, || ops::unique(&ctx, &eb).unwrap());
                assert_eq!(rows_of(&got), rows_of(&ser_uni), "{tag} t={t}: unique");
                let got = parallel(t, || ops::group1(&ExecCtx::new(), &eb).unwrap());
                assert_eq!(rows_of(&got), rows_of(&ser_g), "{tag} t={t}: group1 vs serial");
                let got_canon: Vec<u64> = {
                    let mut map = std::collections::HashMap::new();
                    (0..got.len())
                        .map(|i| {
                            let g = got.tail().oid_at(i);
                            let next = map.len() as u64;
                            *map.entry(g).or_insert(next)
                        })
                        .collect()
                };
                assert_eq!(got_canon, ref_gid, "{tag} t={t}: group1 vs raw reference");
            }

            // Dict-specific broadcast: StrPrefix evaluates once per
            // dictionary entry, then fans out through the narrow codes.
            if ty == AtomType::Str && !sorted {
                use ops::{MultArg, ScalarFunc as F};
                let args =
                    vec![MultArg::Bat(eb.clone()), MultArg::Const(AtomValue::str("Clerk#000"))];
                let raw_args =
                    vec![MultArg::Bat(rb.clone()), MultArg::Const(AtomValue::str("Clerk#000"))];
                let expect = reference::multiplex_synced(F::StrPrefix, &raw_args).unwrap();
                let ser = serial(|| ops::multiplex(&ctx, F::StrPrefix, &args).unwrap());
                assert_eq!(rows_of(&ser), rows_of(&expect), "{tag}: serial prefix vs raw ref");
                for t in THREADS {
                    let got = parallel(t, || ops::multiplex(&ctx, F::StrPrefix, &args).unwrap());
                    assert_eq!(rows_of(&got), rows_of(&ser), "{tag} t={t}: prefix");
                }
            }
        }
    }
}

#[test]
fn par_kernels_bit_identical_on_default_morsel_grid() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 8);
    let ctx = ExecCtx::new();
    let n = 30_000usize;
    let b = Bat::new(
        Column::from_oids((0..n as u64).collect()),
        Column::from_ints((0..n).map(|_| rng.gen_range(0..500i32)).collect()),
    );
    let cfg = |t: usize| (Some(t), Some(1), Some(4099)); // odd morsel, many morsels
    let ser_sel = par::with_par_config(Some(1), Some(1), Some(4099), || {
        ops::select_eq(&ctx, &b, &AtomValue::Int(250)).unwrap()
    });
    let ser_g = par::with_par_config(Some(1), Some(1), Some(4099), || {
        ops::group1(&ExecCtx::new(), &b).unwrap()
    });
    let ser_u =
        par::with_par_config(Some(1), Some(1), Some(4099), || ops::unique(&ctx, &b).unwrap());
    for t in [2usize, 4, 7] {
        let (th, mr, mo) = cfg(t);
        let got = par::with_par_config(th, mr, mo, || {
            ops::select_eq(&ctx, &b, &AtomValue::Int(250)).unwrap()
        });
        assert_eq!(rows_of(&got), rows_of(&ser_sel), "t={t}: select");
        let got = par::with_par_config(th, mr, mo, || ops::group1(&ExecCtx::new(), &b).unwrap());
        assert_eq!(rows_of(&got), rows_of(&ser_g), "t={t}: group1");
        let got = par::with_par_config(th, mr, mo, || ops::unique(&ctx, &b).unwrap());
        assert_eq!(rows_of(&got), rows_of(&ser_u), "t={t}: unique");
    }
}

// ---------------------------------------------------------------------------
// fused pipelines: a select -> map -> (aggr) chain executed in one pass
// over the source must be bit-identical to the same chain run through the
// staged kernels, at every thread count. Chains below respect the
// planner's admission rules (float sums only in unfiltered chains).
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum FusedOutcome {
    Rows(Vec<(AtomValue, AtomValue)>),
    Scalar(AtomValue),
    Fail(String),
}

fn fused_outcome(r: Result<ops::fused::FusedOut, monet::error::MonetError>) -> FusedOutcome {
    match r {
        Ok(ops::fused::FusedOut::Bat(b)) => FusedOutcome::Rows(rows_of(&b)),
        Ok(ops::fused::FusedOut::Scalar(v)) => FusedOutcome::Scalar(v),
        Err(e) => FusedOutcome::Fail(e.to_string()),
    }
}

/// The chain through the ordinary staged kernels — the unfused oracle.
fn staged_outcome(ctx: &ExecCtx, src: &Bat, stages: &[ops::fused::Stage]) -> FusedOutcome {
    use ops::fused::{FArg, Stage};
    let mut cur = src.clone();
    for stage in stages {
        let next = match stage {
            Stage::SelectEq(v) => ops::select_eq(ctx, &cur, v),
            Stage::SelectRange { lo, hi, inc_lo, inc_hi } => {
                ops::select_range(ctx, &cur, lo.as_ref(), hi.as_ref(), *inc_lo, *inc_hi)
            }
            Stage::Map { f, args } => {
                let margs: Vec<ops::MultArg> = args
                    .iter()
                    .map(|a| match a {
                        FArg::Chain => ops::MultArg::Bat(cur.clone()),
                        FArg::Side(b) => ops::MultArg::Bat(b.clone()),
                        FArg::Const(v) => ops::MultArg::Const(v.clone()),
                    })
                    .collect();
                ops::multiplex(ctx, *f, &margs)
            }
            Stage::Aggr(f) => {
                return match ops::aggr_scalar(ctx, &cur, *f) {
                    Ok(v) => FusedOutcome::Scalar(v),
                    Err(e) => FusedOutcome::Fail(e.to_string()),
                };
            }
        };
        match next {
            Ok(b) => cur = b,
            Err(e) => return FusedOutcome::Fail(e.to_string()),
        }
    }
    FusedOutcome::Rows(rows_of(&cur))
}

#[test]
fn par_fused_pipeline_bit_identical() {
    use ops::fused::{run_fused, FArg, Stage};
    use ops::{AggFunc, ScalarFunc as F};
    let mut rng = StdRng::seed_from_u64(SEED ^ 10);
    let ctx = ExecCtx::new();
    for &ty in &[AtomType::Int, AtomType::Lng, AtomType::Dbl] {
        for case in 0..4 {
            let n = rng.gen_range(0..400usize);
            let src =
                Bat::new(random_column(&mut rng, AtomType::Oid, n), random_column(&mut rng, ty, n));
            let v = random_value(&mut rng, ty);
            let (a2, c2) = (random_value(&mut rng, ty), random_value(&mut rng, ty));
            let (lo, hi) = if a2.cmp_same_type(&c2).is_le() { (a2, c2) } else { (c2, a2) };
            let range =
                Stage::SelectRange { lo: Some(lo), hi: Some(hi), inc_lo: true, inc_hi: false };
            let mul3 = Stage::Map { f: F::Mul, args: vec![FArg::Chain, FArg::Const(v.clone())] };
            let sub_side =
                Stage::Map { f: F::Sub, args: vec![FArg::Chain, FArg::Side(src.clone())] };
            let mut chains: Vec<Vec<Stage>> = vec![
                // filtered map (BAT terminal)
                vec![range.clone(), mul3.clone()],
                // unfiltered map chain with a synced side, float-safe sum
                vec![mul3.clone(), sub_side.clone(), Stage::Aggr(AggFunc::Sum)],
                vec![mul3.clone(), Stage::Aggr(AggFunc::Avg)],
                // filtered exact aggregates (regrouping-invariant)
                vec![Stage::SelectEq(v.clone()), Stage::Aggr(AggFunc::Count)],
                vec![range.clone(), Stage::Aggr(AggFunc::Min)],
                vec![range.clone(), Stage::Aggr(AggFunc::Max)],
            ];
            if ty != AtomType::Dbl {
                // Integer sums may regroup across a filter.
                chains.push(vec![range.clone(), Stage::Aggr(AggFunc::Sum)]);
            }
            for (ci, stages) in chains.iter().enumerate() {
                let oracle = serial(|| staged_outcome(&ctx, &src, stages));
                let ser = serial(|| fused_outcome(run_fused(&ctx, &src, stages)));
                assert_eq!(ser, oracle, "{ty} case {case} chain {ci}: fused vs staged");
                for t in THREADS {
                    let got = parallel(t, || fused_outcome(run_fused(&ctx, &src, stages)));
                    assert_eq!(got, ser, "{ty} case {case} chain {ci} t={t}: fused vs serial");
                }
            }
        }
    }
}

#[test]
fn par_fused_dict_select_bit_identical() {
    // Dict-encoded source tails take the per-morsel code-range path; it
    // must match the staged dict-code kernel at every thread count.
    use ops::fused::{run_fused, FArg, Stage};
    use ops::{AggFunc, ScalarFunc as F};
    let mut rng = StdRng::seed_from_u64(SEED ^ 11);
    let ctx = ExecCtx::new();
    for case in 0..3 {
        let n = rng.gen_range(150..400usize);
        let (enc, _raw) = encoded_pair(&mut rng, AtomType::Str, n, false);
        let src = Bat::new(Column::from_oids((0..n as u64).collect()), enc);
        let v = encodable_value(&mut rng, AtomType::Str);
        let chains: Vec<Vec<Stage>> = vec![
            vec![
                Stage::SelectRange { lo: Some(v.clone()), hi: None, inc_lo: false, inc_hi: true },
                Stage::Map { f: F::Eq, args: vec![FArg::Chain, FArg::Const(v.clone())] },
            ],
            vec![Stage::SelectEq(v.clone()), Stage::Aggr(AggFunc::Count)],
            vec![Stage::SelectEq(v.clone()), Stage::Aggr(AggFunc::Min)],
        ];
        for (ci, stages) in chains.iter().enumerate() {
            let oracle = serial(|| staged_outcome(&ctx, &src, stages));
            let ser = serial(|| fused_outcome(run_fused(&ctx, &src, stages)));
            assert_eq!(ser, oracle, "dict case {case} chain {ci}: fused vs staged");
            for t in THREADS {
                let got = parallel(t, || fused_outcome(run_fused(&ctx, &src, stages)));
                assert_eq!(got, ser, "dict case {case} chain {ci} t={t}: fused vs serial");
            }
        }
    }
}
