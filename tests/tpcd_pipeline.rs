//! Cross-crate integration: the full TPC-D pipeline — generate, load
//! (decompose + extents + datavectors + reorder), decomposition invariants
//! (Figure 3), query execution, and pager behaviour end to end.

use std::sync::Arc;

use moa::prelude::*;
use monet::ctx::ExecCtx;
use monet::pager::Pager;
use tpcd_queries::{all_queries, Params};

fn world() -> (tpcd::TpcdData, Catalog, relstore::RelDb, Params) {
    let data = tpcd::generate(0.003, 4242);
    let (cat, _) = tpcd::load_bats(&data);
    let rel = tpcd::load_rowstore(&data);
    let params = Params::for_data(&data);
    (data, cat, rel, params)
}

#[test]
fn figure3_decomposition_roundtrip() {
    let (data, cat, _, _) = world();
    // The structure expression of Supplier reassembles the objects.
    let s = cat.class_structure("Supplier").unwrap();
    assert_eq!(s.len(), data.suppliers.len());
    let vals = s.materialize().unwrap();
    // Cross-check one supplier's nested supplies against the rows.
    let first_oid = data.suppliers[0].oid;
    let expected: usize = data.supplies.iter().filter(|x| x.supplier == first_oid).count();
    match &vals[0] {
        Value::Tuple(fields) => {
            // field order follows the schema: name, address, phone,
            // acctbal, nation, supplies
            match &fields[5] {
                Value::Set(ms) => assert_eq!(ms.len(), expected),
                other => panic!("supplies should be a set, got {other}"),
            }
        }
        other => panic!("supplier should be a tuple, got {other}"),
    }
}

#[test]
fn translated_q13_equals_reference_and_evaluator() {
    let (_, cat, rel, params) = world();
    let ctx = ExecCtx::new();
    let q = tpcd_queries::q11_15::q13_moa(&params);
    // Three independent executions of the same query:
    let translated = tpcd_queries::run_moa_rows(&cat, &ctx, &q).unwrap();
    let reference = tpcd_queries::q11_15::q13_ref(&rel, &params, None);
    assert!(translated.approx_eq(&reference.rows, 1e-6));
    // ... and the denotational evaluator agrees as well.
    let eval_vals = Evaluator::new(&cat).eval_values(&q).unwrap();
    assert_eq!(eval_vals.len(), translated.len());
}

#[test]
fn query_page_faults_reasonable() {
    let (data, cat, _, params) = world();
    // Q13 (tiny selectivity) must touch far fewer pages than Q1 (98%).
    let run = |qid: usize| -> u64 {
        let pager = Arc::new(Pager::new(4096));
        let ctx = ExecCtx::new().with_pager(Arc::clone(&pager));
        let q = &all_queries()[qid - 1];
        let _ = (q.run_moa)(&cat, &ctx, &params).unwrap();
        pager.faults()
    };
    let f1 = run(1);
    let f13 = run(13);
    assert!(
        f13 * 4 < f1,
        "Q13 ({f13} faults) should touch far fewer pages than Q1 ({f1}); items={}",
        data.items.len()
    );
}

#[test]
fn mil_programs_print_and_replay() {
    let (_, cat, _, params) = world();
    let q = tpcd_queries::q11_15::q13_moa(&params);
    let t = translate(&cat, &q).unwrap();
    let text = t.prog.to_string();
    // The canonical Figure 5/10 plan pieces must be present.
    assert!(text.contains("select(Order_clerk"));
    assert!(text.contains("join(Item_order"));
    assert!(text.contains("semijoin(Item_extendedprice"));
    assert!(text.contains("[year]"));
    assert!(text.contains("{sum}"));
    assert!(text.contains("group("));
    // Executing twice yields identical results (operators never mutate
    // their operands).
    let ctx = ExecCtx::new();
    let (a, _) = t.run(&ctx, cat.db()).unwrap();
    let (b, _) = t.run(&ctx, cat.db()).unwrap();
    let (mut va, mut vb) =
        (Value::Set(a.materialize().unwrap()), Value::Set(b.materialize().unwrap()));
    va.canonicalize();
    vb.canonicalize();
    assert!(va.approx_eq(&vb, 0.0));
}

#[test]
fn memory_accounting_tracks_intermediates() {
    let (_, cat, _, params) = world();
    let ctx = ExecCtx::new();
    ctx.mem.reset();
    let q = tpcd_queries::q11_15::q13_moa(&params);
    let _ = tpcd_queries::run_moa_rows(&cat, &ctx, &q).unwrap();
    assert!(ctx.mem.total_bytes() > 0, "intermediates must be accounted");
    assert!(ctx.mem.max_live_bytes() > 0);
}

#[test]
fn bounded_resident_set_still_correct() {
    // The Q1 hot-set experiment: a tiny resident set changes fault counts,
    // never results.
    let (_, cat, rel, params) = world();
    let q1 = &all_queries()[0];
    let reference = (q1.run_ref)(&rel, &params, None);

    let unbounded = Arc::new(Pager::new(4096));
    let ctx1 = ExecCtx::new().with_pager(Arc::clone(&unbounded));
    let r1 = (q1.run_moa)(&cat, &ctx1, &params).unwrap();

    let bounded = Arc::new(Pager::with_capacity(4096, 256));
    let ctx2 = ExecCtx::new().with_pager(Arc::clone(&bounded));
    let r2 = (q1.run_moa)(&cat, &ctx2, &params).unwrap();

    assert!(r1.approx_eq(&reference.rows, 1e-6));
    assert!(r2.approx_eq(&reference.rows, 1e-6));
    assert!(
        bounded.faults() > unbounded.faults(),
        "thrashing resident set must fault more ({} vs {})",
        bounded.faults(),
        unbounded.faults()
    );
}

#[test]
fn load_report_phases_accounted() {
    let data = tpcd::generate(0.002, 99);
    let (_, report) = tpcd::load_bats(&data);
    assert!(report.bulk_ms >= 0.0);
    assert!(report.base_bytes > 0);
    assert!(report.dv_bytes > 0);
    assert!(report.bat_count > 40);
    assert!(report.total_ms() >= report.reorder_ms);
}
