//! §4.3.2 on generated TPC-D data: nested-set operations execute flat and
//! agree with row-level recomputation.

use std::collections::HashMap;

use moa::prelude::*;
use monet::atom::Oid;
use monet::ctx::ExecCtx;
use monet::ops::{AggFunc, ScalarFunc};

#[test]
fn out_of_stock_supplies_match_rows() {
    let data = tpcd::generate(0.004, 777);
    let (cat, _) = tpcd::load_bats(&data);

    // project[<%name, select[%available = 0](%supplies)>](Supplier)
    let q = SetExpr::extent("Supplier").project(vec![
        ProjItem::new("name", attr("name")),
        ProjItem::new(
            "oos",
            Expr::SetV(SetValued::SelectIn(
                Box::new(sattr("supplies")),
                Box::new(eq(attr("available"), lit_i(0))),
            )),
        ),
    ]);
    let t = translate(&cat, &q).unwrap();
    let (set, _) = t.run(&ExecCtx::new(), cat.db()).unwrap();
    let vals = set.materialize().unwrap();
    assert_eq!(vals.len(), data.suppliers.len());

    // Row-level truth: out-of-stock count per supplier.
    let mut expected: HashMap<&str, usize> = HashMap::new();
    let by_oid: HashMap<Oid, &str> =
        data.suppliers.iter().map(|s| (s.oid, s.name.as_str())).collect();
    for s in &data.supplies {
        if s.available == 0 {
            *expected.entry(by_oid[&s.supplier]).or_insert(0) += 1;
        }
    }
    let mut total_from_moa = 0usize;
    for v in &vals {
        let Value::Tuple(fields) = v else { panic!("tuple expected") };
        let Value::Atom(monet::atom::AtomValue::Str(name)) = &fields[0] else {
            panic!("name expected")
        };
        let Value::Set(members) = &fields[1] else { panic!("set expected") };
        assert_eq!(
            members.len(),
            expected.get(name.as_ref()).copied().unwrap_or(0),
            "out-of-stock count for {name}"
        );
        total_from_moa += members.len();
    }
    let total_rows = data.supplies.iter().filter(|s| s.available == 0).count();
    assert_eq!(total_from_moa, total_rows);
    assert!(total_rows > 0, "fixture should contain out-of-stock supplies");
}

#[test]
fn nested_aggregates_match_rows() {
    let data = tpcd::generate(0.004, 778);
    let (cat, _) = tpcd::load_bats(&data);
    let ctx = ExecCtx::new();

    // Stock value per supplier, aggregated flat over all nested sets.
    let q = SetExpr::extent("Supplier")
        .select(cmp(
            ScalarFunc::Gt,
            agg(AggFunc::Count, sattr("supplies")),
            lit(monet::atom::AtomValue::Lng(0)),
        ))
        .project(vec![
            ProjItem::new("name", attr("name")),
            ProjItem::new(
                "value",
                agg_over(
                    AggFunc::Sum,
                    sattr("supplies"),
                    bin(ScalarFunc::Mul, attr("cost"), attr("available")),
                ),
            ),
        ]);
    let rows = tpcd_queries::run_moa_rows(&cat, &ctx, &q).unwrap();

    let mut expected: HashMap<&str, f64> = HashMap::new();
    let by_oid: HashMap<Oid, &str> =
        data.suppliers.iter().map(|s| (s.oid, s.name.as_str())).collect();
    for s in &data.supplies {
        *expected.entry(by_oid[&s.supplier]).or_insert(0.0) += s.cost * s.available as f64;
    }
    assert_eq!(rows.len(), expected.len());
    for row in &rows.0 {
        let monet::atom::AtomValue::Str(name) = &row[0] else { panic!() };
        let monet::atom::AtomValue::Dbl(v) = &row[1] else { panic!() };
        let want = expected[name.as_ref()];
        assert!((v - want).abs() <= 1e-6 * (1.0 + want.abs()), "{name}: {v} vs {want}");
    }
}

#[test]
fn unnest_count_matches_rows() {
    let data = tpcd::generate(0.003, 779);
    let (cat, _) = tpcd::load_bats(&data);
    let ctx = ExecCtx::new();
    let q = SetExpr::extent("Supplier").unnest(sattr("supplies"), "sup", "sp");
    let rows = tpcd_queries::run_moa_rows(
        &cat,
        &ctx,
        &q.project(vec![ProjItem::new("s", attr("sup.name")), ProjItem::new("p", attr("sp.part"))]),
    )
    .unwrap();
    assert_eq!(rows.len(), data.supplies.len());
}
