//! The persistent store end to end: a saved world re-opens into a catalog
//! whose fifteen query results are *bit-identical* (eps 0.0) to the
//! generated in-memory world — under whatever thread-count / encoding leg
//! the process runs — and every corruption mode (flipped data byte,
//! truncated tail file, version-mismatched header, mangled layout
//! descriptor) surfaces a typed error with nothing partially registered.

use monet::ctx::ExecCtx;
use monet::error::MonetError;
use monet::store::{xxh64, OpenOptions};
use tpcd::TpcdError;
use tpcd_queries::all_queries;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("flatalg-storetest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A saved copy of the shared bench world (SF 0.01), one per process.
fn saved_world() -> (&'static bench::World, &'static std::path::Path) {
    static SAVED: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
    let w = bench::world();
    let dir = SAVED.get_or_init(|| {
        let d = tmpdir("world");
        w.save_store(&d).expect("save");
        d
    });
    (w, dir)
}

#[test]
fn opened_store_queries_are_bit_identical_to_the_generated_world() {
    let (w, dir) = saved_world();
    let sw = bench::StoreWorld::open_with(&dir, &OpenOptions { verify_data: true })
        .expect("open with full verification");
    assert!(sw.files > 0 && sw.mapped_bytes > 0);
    // Satellite of the plan-cache satellite: a store-backed catalog must
    // never share a Db identity with the in-memory world it was saved from.
    assert_ne!(sw.cat.db().id(), w.cat.db().id());
    for q in all_queries() {
        let mem = (q.run_moa)(&w.cat, &ExecCtx::new(), &w.params).expect("in-memory");
        let opened = (q.run_moa)(&sw.cat, &ExecCtx::new(), &sw.params).expect("opened");
        assert!(
            opened.approx_eq(&mem, 0.0),
            "Q{}: opened-store result differs from the in-memory world\nopened:\n{}in-mem:\n{}",
            q.id,
            opened.preview(5),
            mem.preview(5)
        );
    }
}

/// Copy the saved store into a fresh directory the test may corrupt.
fn corruptible_copy(tag: &str) -> std::path::PathBuf {
    let (_, src) = saved_world();
    let dst = tmpdir(tag);
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let p = entry.unwrap().path();
        std::fs::copy(&p, dst.join(p.file_name().unwrap())).unwrap();
    }
    dst
}

fn a_column_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut cols: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("col-"))
        .collect();
    cols.sort();
    cols.into_iter().next().expect("store has column files")
}

fn open_err(dir: &std::path::Path, verify_data: bool) -> MonetError {
    match tpcd::open_catalog(dir, None, &OpenOptions { verify_data }) {
        Err(TpcdError::Store(e)) => e,
        Err(other) => panic!("expected a store error, got {other}"),
        Ok(_) => panic!("corrupted store must not open"),
    }
}

#[test]
fn flipped_data_byte_fails_checksum_verification() {
    let dir = corruptible_copy("bitflip");
    let col = a_column_file(&dir);
    let mut bytes = std::fs::read(&col).unwrap();
    assert!(bytes.len() > 4096, "need a data page to corrupt");
    bytes[4096] ^= 0xFF; // first byte of the first data segment
    std::fs::write(&col, &bytes).unwrap();
    let e = open_err(&dir, true);
    match &e {
        MonetError::Store { op, detail, .. } => {
            assert_eq!(*op, "store/open");
            assert!(detail.contains("checksum"), "detail: {detail}");
        }
        other => panic!("expected Store, got {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipped_header_byte_fails_the_default_open() {
    let dir = corruptible_copy("hdrflip");
    let col = a_column_file(&dir);
    let mut bytes = std::fs::read(&col).unwrap();
    bytes[16] ^= 0xFF; // row count — header checksum must catch it
    std::fs::write(&col, &bytes).unwrap();
    let e = open_err(&dir, false);
    assert!(matches!(e, MonetError::Store { .. }), "got {e}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_tail_file_is_rejected() {
    let dir = corruptible_copy("trunc");
    let col = a_column_file(&dir);
    let bytes = std::fs::read(&col).unwrap();
    assert!(bytes.len() > 4096);
    std::fs::write(&col, &bytes[..4096]).unwrap(); // keep only the header
    let e = open_err(&dir, false);
    match &e {
        MonetError::Store { detail, .. } => {
            assert!(detail.contains("truncated") || detail.contains("past end"), "{detail}");
        }
        other => panic!("expected Store, got {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn version_mismatch_is_rejected_before_anything_else() {
    let dir = corruptible_copy("version");
    let col = a_column_file(&dir);
    let mut bytes = std::fs::read(&col).unwrap();
    bytes[8..12].copy_from_slice(&(monet::store::VERSION + 1).to_le_bytes());
    std::fs::write(&col, &bytes).unwrap();
    let e = open_err(&dir, false);
    match &e {
        MonetError::Store { detail, .. } => {
            assert!(detail.contains("version mismatch"), "{detail}");
        }
        other => panic!("expected Store, got {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mangled_layout_descriptor_is_rejected_even_with_a_valid_checksum() {
    // An attacker-grade corruption: change the layout byte *and* restamp
    // the header checksum, so only the descriptor-consistency validation
    // can catch it.
    let dir = corruptible_copy("layout");
    let col = a_column_file(&dir);
    let mut bytes = std::fs::read(&col).unwrap();
    bytes[13] = 99; // no such layout
    bytes[48..56].fill(0);
    let sum = xxh64(&bytes[..4096], 0);
    bytes[48..56].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&col, &bytes).unwrap();
    let e = open_err(&dir, false);
    assert!(matches!(e, MonetError::Store { .. }), "got {e}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_column_file_means_no_catalog_at_all() {
    let dir = corruptible_copy("missing");
    std::fs::remove_file(a_column_file(&dir)).unwrap();
    // All-or-nothing: the open fails as a unit; there is no partially
    // registered catalog to observe, only the typed error.
    let e = open_err(&dir, false);
    assert!(matches!(e, MonetError::Store { .. }), "got {e}");
    std::fs::remove_dir_all(&dir).unwrap();
}
