//! The out-of-core knobs, end to end. Two CI legs run this one-test
//! binary (the knobs are parsed once per process, so each leg is its own
//! process, like `governor_env`):
//!
//! * `FLATALG_SPILL=force` — every eligible operator takes the disk
//!   path, and all fifteen query results must stay bit-close to the
//!   n-ary reference plans (which never touch the spill dispatch);
//! * `FLATALG_MEM_BUDGET=<low>` — no override: the cost model's
//!   headroom check must *choose* to spill on its own, and every query
//!   must either still match the reference or abort with a clean typed
//!   `BudgetExceeded` from an operator that cannot spill (the budget
//!   keeps bounding live memory; spilled working sets never count
//!   against it, which is why spilling queries survive budgets their
//!   in-memory forms could not).
//!
//! Under a bare `cargo test` (neither knob set) the test forces the
//! spill override itself so it stays meaningful.

use moa::error::MoaError;
use monet::ctx::ExecCtx;
use monet::error::MonetError;
use tpcd_queries::all_queries;

#[test]
fn out_of_core_execution_reproduces_reference_results() {
    let budget_leg = std::env::var("FLATALG_MEM_BUDGET").is_ok();
    if !budget_leg && std::env::var("FLATALG_SPILL").is_err() {
        std::env::set_var("FLATALG_SPILL", "force");
    }
    // The budget leg needs joins whose in-memory working-set estimate
    // can top the remaining headroom, so it runs at a larger scale.
    let w = bench::World::build(if budget_leg { 0.02 } else { 0.004 });

    let mut spilled_total = 0u64;
    let mut spill_ops = 0usize;
    let mut passed = 0usize;
    for q in all_queries() {
        let reference = (q.run_ref)(&w.rel, &w.params, None);
        let ctx = ExecCtx::new().with_trace();
        match (q.run_moa)(&w.cat, &ctx, &w.params) {
            Ok(rows) => {
                assert!(
                    rows.approx_eq(&reference.rows, 1e-6),
                    "Q{}: spilling run diverged from the reference\nspill:\n{}ref:\n{}",
                    q.id,
                    rows.preview(5),
                    reference.rows.preview(5)
                );
                passed += 1;
            }
            // Only the budget leg may abort, and only with the typed
            // budget error — anything else (panic, wrong variant) fails.
            Err(MoaError::Kernel(MonetError::BudgetExceeded { .. })) if budget_leg => {}
            Err(e) => panic!("Q{}: expected success under spilling, got: {e}", q.id),
        }
        spilled_total += ctx.mem.spilled_bytes();
        spill_ops += ctx.take_trace().iter().filter(|t| t.algo == "spill").count();
    }
    assert!(spill_ops > 0, "at least one operator must have dispatched to the spill path");
    assert!(spilled_total > 0, "spill files must have been written ({spill_ops} spill ops)");
    assert!(passed > 0, "at least one query must complete under the budget by spilling");
    if !budget_leg {
        assert_eq!(passed, 15, "the forced-spill leg must complete every query");
    }

    // The spill files are transient: nothing of ours may linger.
    let pid = std::process::id();
    let leftovers = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(&format!("flatalg-spill-{pid}-")))
        .count();
    assert_eq!(leftovers, 0, "spill files must be deleted when their operator finishes");
}
