//! The `FLATALG_MEM_BUDGET` environment knob, end to end: a process-wide
//! byte budget set below the workload's peak makes queries abort with a
//! clean typed `BudgetExceeded` — no panic, no hang — and a session can
//! lift its own budget (the knob is session-overridable) and re-run
//! green.
//!
//! This is its own one-test binary: the env spec is parsed once per
//! process and seeds every new context, so it must be set before the
//! first `ExecCtx` exists. The CI low-budget leg runs exactly this
//! binary; setting the variable here (when absent) keeps the test
//! meaningful under a bare `cargo test` too.

use flatalg_server::{Server, ServerConfig};
use moa::error::MoaError;
use monet::error::MonetError;
use tpcd_queries::all_queries;

#[test]
fn env_budget_below_peak_aborts_cleanly_and_lifting_recovers() {
    // 64 KiB is far below the Q1–Q15 charged peak at any scale factor;
    // respect an externally set value so the CI leg controls the knob.
    if std::env::var("FLATALG_MEM_BUDGET").is_err() {
        std::env::set_var("FLATALG_MEM_BUDGET", "64k");
    }
    let w = bench::World::build(0.002);
    let queries = all_queries();
    let server = Server::with_config(
        &w.cat,
        ServerConfig { max_concurrent: 2, plan_cache: Some(64), ..ServerConfig::default() },
    );

    // Under the env budget, every failure must be the typed budget error;
    // at 64 KiB every workload query trips it.
    let session = server.session();
    let mut budget_aborts = 0usize;
    for q in &queries {
        match session.run_query(q, &w.params) {
            Err(MoaError::Kernel(MonetError::BudgetExceeded { budget_bytes, .. })) => {
                assert_eq!(budget_bytes, 64 * 1024, "budget must come from the env knob");
                budget_aborts += 1;
            }
            Err(e) => panic!("q{}: expected BudgetExceeded, got: {e}", q.id),
            Ok(_) => {}
        }
    }
    assert!(budget_aborts > 0, "a 64 KiB budget must abort at least one query");
    assert_eq!(server.stats().failed as usize, budget_aborts);

    // Session override lifts the env budget in place: the same session
    // re-runs the whole mix green, and two lifted sessions agree
    // bit-for-bit.
    session.ctx().mem.set_budget(None);
    let fresh = server.session();
    fresh.ctx().mem.set_budget(None);
    for q in &queries {
        let a = session.run_query(q, &w.params).unwrap_or_else(|e| {
            panic!("q{}: lifted-budget run failed: {e}", q.id);
        });
        let b = fresh.run_query(q, &w.params).unwrap();
        assert_eq!(a, b, "q{}: lifted-budget sessions diverged", q.id);
    }
}
