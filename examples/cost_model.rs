//! The Section 5.2.2 IO cost model (Figure 8): expected page faults of a
//! select-project for the relational vs. the Monet/datavector strategy,
//! printed as the paper's series, plus the crossover points.
//!
//! Run: `cargo run --example cost_model`

use monet::costmodel::{crossover, e_dv, e_rel, CostParams};

fn main() {
    let p = CostParams::figure8();
    println!(
        "select-project IO cost (X={} rows, n={} attrs, w={}B, B={}B pages)\n",
        p.rows, p.n_attrs, p.width, p.page_size
    );
    println!(
        "{:>12} {:>10} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "selectivity", "E_rel", "E_dv(p=1)", "E_dv(p=3)", "E_dv(p=6)", "E_dv(p=9)", "E_dv(p=12)"
    );
    for i in 0..=12 {
        let s = i as f64 * 0.0025;
        println!(
            "{:>12.4} {:>10.0} {:>11.0} {:>11.0} {:>11.0} {:>11.0} {:>11.0}",
            s,
            e_rel(&p, s),
            e_dv(&p, s, 1),
            e_dv(&p, s, 3),
            e_dv(&p, s, 6),
            e_dv(&p, s, 9),
            e_dv(&p, s, 12),
        );
    }
    println!();
    for proj in [1, 3, 6, 9, 12] {
        if let Some(s) = crossover(&p, proj) {
            println!("E_dv(p={proj}) beats E_rel above s ≈ {s:.4}");
        }
    }
    println!("\npaper: \"the crossover point for n=16, p=3 is at s ≈ 0.004\"");
}
