//! Quickstart: the paper's machinery end to end on a tiny database.
//!
//! Builds the Figure 2 `Customer_name` BAT, decomposes a two-class schema
//! (Figure 3 style), prints the structure expression, and runs one MOA
//! query both through the reference evaluator and through the MOA→MIL
//! translator on the Monet kernel — checking the Figure 6 commutativity.
//!
//! Run: `cargo run --example quickstart`

use moa::prelude::*;
use monet::prelude::*;

fn main() {
    // --- BATs: the binary relational building block (Figure 2) ---------
    let customer_name = Bat::with_inferred_props(
        Column::from_oids(vec![101, 102, 103, 104]),
        Column::from_strs(["Annita", "Martin", "Peter", "Annita"]),
    );
    println!("The Customer_name BAT of Figure 2:");
    print!("{}", customer_name.dump(10));
    println!("mirror is free of cost:");
    print!("{}", customer_name.mirror().dump(2));

    // --- a small schema, decomposed over BATs (Figure 3 style) ---------
    let mut schema = Schema::new();
    schema
        .add_class(ClassDef::new("Nation", vec![Field::new("name", MoaType::Base(AtomType::Str))]));
    schema.add_class(ClassDef::new(
        "Customer",
        vec![
            Field::new("name", MoaType::Base(AtomType::Str)),
            Field::new("nation", MoaType::Object("Nation".into())),
        ],
    ));
    println!("\nThe schema, in Figure 1 notation:");
    for c in schema.classes() {
        print!("{c}");
    }

    let mut db = Db::new();
    db.register("Nation", Bat::new(Column::from_oids(vec![1, 2]), Column::void(0, 2)));
    db.register(
        "Nation_name",
        Bat::new(Column::from_oids(vec![1, 2]), Column::from_strs(["FRANCE", "PERU"])),
    );
    db.register(
        "Customer",
        Bat::new(Column::from_oids(vec![101, 102, 103, 104]), Column::void(0, 4)),
    );
    db.register("Customer_name", customer_name);
    db.register(
        "Customer_nation",
        Bat::new(Column::from_oids(vec![101, 102, 103, 104]), Column::from_oids(vec![1, 2, 1, 2])),
    );
    let cat = Catalog::new(schema, db);

    println!("\nThe structure expression of the Customer class (Figure 3):");
    let s = cat.class_structure("Customer").unwrap();
    println!("  SET(Customer, {})", s.inner.render());

    // --- a MOA query, translated to MIL (Figure 6) ----------------------
    let q = SetExpr::extent("Customer")
        .select(eq(attr("nation.name"), lit_s("FRANCE")))
        .project(vec![ProjItem::new("name", attr("name"))]);
    println!("\nMOA query:\n  {}", q.render());

    let t = translate(&cat, &q).unwrap();
    println!("\ntranslates to the MIL program:");
    for line in t.prog.to_string().lines() {
        println!("  {line}");
    }

    let ctx = ExecCtx::new();
    let (result, _env) = t.run(&ctx, cat.db()).unwrap();
    let via_kernel = result.materialize().unwrap();
    let via_reference = Evaluator::new(&cat).eval_values(&q).unwrap();
    println!(
        "\nresult (via kernel):    {:?}",
        via_kernel.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
    println!(
        "result (via reference): {:?}",
        via_reference.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
    assert_eq!(via_kernel.len(), via_reference.len());
    println!("\nS_Y(mil(X…)) = moa(X) — the Figure 6 diagram commutes.");
}
