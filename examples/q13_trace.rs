//! The paper's running example: TPC-D Q13 ("loss due to returned orders
//! of a clerk") translated to MIL and traced statement by statement, like
//! Figure 10 — showing the dynamically chosen implementations, including
//! the datavector semijoins and the synced multiplexes.
//!
//! Run: `cargo run --release --example q13_trace`

use std::sync::Arc;

use monet::ctx::ExecCtx;
use monet::pager::Pager;
use tpcd_queries::{q11_15::q13_moa, Params};

fn main() {
    let data = tpcd::generate(0.01, 19980223);
    let (cat, _) = tpcd::load_bats(&data);
    let params = Params::for_data(&data);

    let q = q13_moa(&params);
    println!("MOA (Section 4.1):\n  {}\n", q.render());

    let t = moa::translate::translate(&cat, &q).expect("translate");
    println!("MIL:");
    for line in t.prog.to_string().lines() {
        println!("  {line}");
    }

    let pager = Arc::new(Pager::new(4096));
    let ctx = ExecCtx::new().with_pager(Arc::clone(&pager)).with_trace();
    let env = monet::mil::execute(&ctx, cat.db(), &t.prog, &t.keep).expect("execute");

    println!("\n{:>9} {:>8} {:>8} {:>12}  statement", "ms", "faults", "result", "algorithm");
    for s in env.trace() {
        println!(
            "{:>9.3} {:>8} {:>8} {:>12}  {}",
            s.ms, s.faults, s.result_len, s.algo, s.rendered
        );
    }

    let set = t.build(&env).expect("structure");
    println!("\nresult — SET(INDEX, {}):", set.inner.render());
    for v in set.materialize().expect("materialize") {
        println!("  {v}");
    }
}
