//! Section 4.3.2: selection on a *nested* set-valued attribute, executed
//! flat. "Instead of executing repeated selections for each nested set, we
//! can do all the work together in one selection on the flattened
//! representation."
//!
//! The query: for each supplier, the set of supplies that are out of
//! stock — `project[<%name, select[%available = 0](%supplies)>](Supplier)`.
//!
//! Run: `cargo run --release --example out_of_stock`

use moa::prelude::*;
use monet::ctx::ExecCtx;
use monet::ops::AggFunc;

fn main() {
    let data = tpcd::generate(0.005, 19980223);
    let (cat, _) = tpcd::load_bats(&data);

    let q = SetExpr::extent("Supplier").project(vec![
        ProjItem::new("name", attr("name")),
        ProjItem::new(
            "out_of_stock",
            Expr::SetV(SetValued::SelectIn(
                Box::new(sattr("supplies")),
                Box::new(eq(attr("available"), lit_i(0))),
            )),
        ),
    ]);
    println!("MOA:\n  {}\n", q.render());

    let t = translate(&cat, &q).expect("translate");
    println!("MIL (note: ONE flat selection on the member BAT, no per-set loop):");
    for line in t.prog.to_string().lines() {
        println!("  {line}");
    }

    let ctx = ExecCtx::new();
    let (set, _env) = t.run(&ctx, cat.db()).expect("run");
    let vals = set.materialize().expect("materialize");
    let n_out: usize = vals
        .iter()
        .filter(|v| match v {
            Value::Tuple(fs) => matches!(&fs[1], Value::Set(ms) if !ms.is_empty()),
            _ => false,
        })
        .count();
    println!(
        "\n{} suppliers, {} with at least one out-of-stock supply; first few:",
        vals.len(),
        n_out
    );
    for v in vals.iter().take(4) {
        println!("  {v}");
    }

    // The same machinery also aggregates over nested sets in one go:
    let totals = SetExpr::extent("Supplier")
        .select(cmp(
            monet::ops::ScalarFunc::Gt,
            agg(AggFunc::Count, sattr("supplies")),
            lit(monet::atom::AtomValue::Lng(0)),
        ))
        .project(vec![
            ProjItem::new("name", attr("name")),
            ProjItem::new(
                "stock_value",
                agg_over(
                    AggFunc::Sum,
                    sattr("supplies"),
                    bin(monet::ops::ScalarFunc::Mul, attr("cost"), attr("available")),
                ),
            ),
        ]);
    let rows = tpcd_queries::run_moa_rows(&cat, &ctx, &totals).expect("totals");
    println!("\nper-supplier stock value (bulk {{sum}} over all nested sets at once):");
    print!("{}", rows.preview(4));
}
