//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset of proptest used by the workspace's property
//! tests: the `proptest!` macro with `#![proptest_config(..)]` and
//! `pat in strategy` arguments, `prop_assert!`/`prop_assert_eq!`,
//! integer-range and tuple strategies, `prop_map`/`prop_flat_map`,
//! `collection::{vec, btree_set}`, and `any::<bool>()`.
//!
//! Differences from upstream: generation is driven by a fixed seed (so
//! runs are reproducible and never flaky), there is **no shrinking**, and
//! failure reports print the case number plus generated-value `Debug` only
//! through the assertion message.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }
    }

    /// `base.prop_map(f)`.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// `base.prop_flat_map(f)`.
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Strategy for a value that always equals `self.0`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()` — the canonical strategy of a type.
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f32, f64);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Element-count specification: an exact count or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            SizeRange { lo, hi: hi + 1 }
        }
    }

    /// `vec(element, size)` — a Vec with `size` elements.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `btree_set(element, size)` — up to `size` distinct elements
    /// (duplicates drawn from the element strategy collapse, as upstream).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts, as upstream: stop growing when the element
            // domain is too small to reach the target size.
            let mut misses = 0;
            while out.len() < n && misses < 64 {
                if !out.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

pub mod test_runner {
    /// Why a test case failed; carried from `prop_assert*` to the runner.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (`ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Fixed base seed; override with `PROPTEST_SEED` to explore other
    /// streams. Each case advances the one RNG, so cases differ.
    pub fn rng_for(test_name: &str) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x1CDE_1998);
        // Stable per-test offset so tests draw distinct streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        rand::rngs::StdRng::seed_from_u64(base ^ h)
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a proptest case; failure aborts only this case's closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// The proptest test-definition macro: each `pat in strategy` argument is
/// drawn fresh per case; the body may `prop_assert*` or `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let rng = $crate::test_runner::rng_for(stringify!($name));
                $crate::__proptest_run(config, rng, |rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                }, stringify!($name));
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                #[test]
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[doc(hidden)]
pub fn __proptest_run<F>(
    config: test_runner::Config,
    mut rng: rand::rngs::StdRng,
    mut case: F,
    name: &str,
) where
    F: FnMut(&mut rand::rngs::StdRng) -> Result<(), test_runner::TestCaseError>,
{
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("proptest `{name}` failed at case {i}/{}: {e}", config.cases);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections(v in collection::vec((0u64..40, -20i32..20), 0..40),
                                  k in 1usize..8) {
            prop_assert!(v.len() < 40);
            prop_assert!(k >= 1 && k < 8);
            for (a, b) in &v {
                prop_assert!(*a < 40);
                prop_assert!((-20..20).contains(b));
            }
        }

        #[test]
        fn flat_map_composes(pair in (1usize..6).prop_flat_map(|n| {
            (Just(n), collection::vec(0u8..4, n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn early_return_ok(b in any::<bool>()) {
            if b {
                return Ok(());
            }
            prop_assert!(!b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0i32..100, 5usize);
        let mut r1 = crate::test_runner::rng_for("x");
        let mut r2 = crate::test_runner::rng_for("x");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
