//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements exactly the API surface the workspace uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::gen_range` over integer
//! and float ranges, `Rng::gen_bool`, and `Rng::gen` for a few primitives.
//! The stream is xoshiro256**, seeded via SplitMix64 — high quality and
//! stable across platforms, though *not* bit-identical to upstream rand.

/// Core trait for random number generators.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
            let f = r.gen_range(-999.99..9999.99f64);
            assert!((-999.99..9999.99).contains(&f));
            let u = r.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
