//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the subset of Criterion's API the benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`/`measurement_time`/`warm_up_time`,
//! `Bencher::iter`, `black_box` — backed by a simple wall-clock measurement
//! loop that reports the median per-iteration time. It honors
//! `--list`/`--test`/`--no-run`-style invocation well enough for
//! `cargo bench` and `cargo bench --no-run` to work.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    list_only: bool,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            filter: None,
            list_only: false,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Parse the benchmark-harness CLI arguments Cargo forwards.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--profile-time" => {
                    // --profile-time takes a value; skip it.
                    if a == "--profile-time" {
                        args.next();
                    }
                }
                "--list" => self.list_only = true,
                "--test" => self.test_mode = true,
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                        self.sample_size = v;
                    }
                }
                "--measurement-time" => {
                    if let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) {
                        self.measurement_time = Duration::from_secs_f64(v);
                    }
                }
                s if !s.starts_with('-') => self.filter = Some(s.to_string()),
                _ => {}
            }
        }
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            c: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = GroupSettings {
            name: self.name.clone(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        run_one(self.c, Some(&group), id, f);
        self
    }

    pub fn finish(self) {}
}

struct GroupSettings {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    mode: BenchMode,
    /// Median nanoseconds per iteration, filled in by `iter`.
    result_ns: f64,
}

enum BenchMode {
    /// Run once to check the closure doesn't panic (`cargo bench --test`).
    Test,
    /// Measure: (sample count, time budget, warm-up budget).
    Measure(usize, Duration, Duration),
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            BenchMode::Test => {
                black_box(f());
            }
            BenchMode::Measure(samples, budget, warm_up) => {
                let warm_start = Instant::now();
                let mut iters_per_sample = 1u64;
                // Warm up and estimate how many iterations fit a sample.
                let mut est = Duration::ZERO;
                while warm_start.elapsed() < warm_up {
                    let t = Instant::now();
                    black_box(f());
                    est = t.elapsed();
                }
                if est > Duration::ZERO {
                    let per_sample = budget.as_nanos() / samples.max(1) as u128;
                    iters_per_sample =
                        ((per_sample / est.as_nanos().max(1)) as u64).clamp(1, 1_000_000);
                }
                let mut times: Vec<f64> = Vec::with_capacity(samples);
                let run_start = Instant::now();
                for _ in 0..samples {
                    let t = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(f());
                    }
                    times.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
                    // Never exceed ~4x the requested budget even if the
                    // closure is much slower than the warm-up estimated.
                    if run_start.elapsed() > budget * 4 {
                        break;
                    }
                }
                times.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.result_ns = times[times.len() / 2];
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{:.4} ns", ns)
    }
}

fn run_one<F>(c: &Criterion, group: Option<&GroupSettings>, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full = match group {
        Some(g) => format!("{}/{}", g.name, id),
        None => id.to_string(),
    };
    if let Some(filter) = &c.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    if c.list_only {
        println!("{full}: benchmark");
        return;
    }
    let (samples, budget, warm_up) = match group {
        Some(g) => (g.sample_size, g.measurement_time, g.warm_up_time),
        None => (c.sample_size, c.measurement_time, c.warm_up_time),
    };
    let mode =
        if c.test_mode { BenchMode::Test } else { BenchMode::Measure(samples, budget, warm_up) };
    let mut b = Bencher { mode, result_ns: 0.0 };
    f(&mut b);
    if c.test_mode {
        println!("{full}: test ok");
    } else {
        println!("{full:<50} time: [{}]", format_ns(b.result_ns));
    }
}

/// Define a group of benchmark functions, as in upstream Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`, as in upstream Criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut hits = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        assert!(hits > 0);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
